//! The shared maintenance DAG for one ring type.
//!
//! A [`DagEngine`] materializes the views of *many* registered queries in
//! one node pool, unifying structurally equal sub-plans: every view-tree
//! node is identified by its recursive [`NodeFingerprint`] (labeled with
//! the lift names, so equal structure under different aggregates never
//! unifies) and every base-relation leaf by its [`RelationFingerprint`].
//! Registering a query walks its tree bottom-up, reusing any node whose
//! fingerprint already exists and creating the rest — so two queries whose
//! trees share a prefix share those materialized views, maintained **once**
//! per propagation pass.
//!
//! ## One pass, fan-out at divergence
//!
//! An update batch enters at the (single) leaf node of the updated
//! relation and propagates *up the DAG*: each affected node consumes the
//! delta produced by its affected child, joins it against its other
//! (unaffected) sibling views, applies its lift, updates its own view and
//! hands the produced delta to **all** of its parents.  Because node
//! fingerprints are recursive and a relation is attached exactly once per
//! query, the affected subgraph of a pass is an out-tree rooted at the
//! leaf — every affected node has exactly one affected child, so each node
//! is visited once and a shared prefix is maintained once no matter how
//! many queries sit above it.  Per-node deltas are kept in an arena for
//! the duration of the pass so a delta consumed by several parents is
//! computed once.
//!
//! The propagation itself is [`fivm_core::kernel`] — the same grouping,
//! probing and lift-application code the single-tree engine runs, which is
//! why the differential suite can demand bit-identical results.
//!
//! ## Runtime register / unregister
//!
//! [`DagEngine::register`] works against a live DAG: new leaves are
//! populated from a caller-supplied backfill database (required once
//! updates have flowed) and new inner nodes are evaluated from their
//! children's *materialized* state — child 0's full view is fed through
//! the node's delta plan as one big delta — so no stream replay is needed.
//! [`DagEngine::unregister`] decrements per-node refcounts and retires
//! nodes that hit zero (views dropped, ids recycled), leaving shared
//! survivors untouched.

use crate::error::{DagError, DagResult};
use fivm_common::{EncodedKey, FivmError, VarId};
use fivm_core::kernel::{direct_level, group_row, probe_level, KernelMode, PropagationScratch};
use fivm_core::plan::{compile_delta_plan, ChildInfo, DeltaPlan, ExecutionPlan, ProbeKind};
use fivm_core::{EngineStats, MaterializedView, UpdateOutcome};
use fivm_query::fingerprint::{
    relation_fingerprint, tree_fingerprints_labeled, NodeFingerprint, RelationFingerprint,
};
use fivm_query::{ChildRef, QuerySpec, ViewTree};
use fivm_relation::{Database, Relation, Update};
use fivm_ring::{LiftFn, Ring, RingCtx};
use std::collections::{HashMap, VecDeque};

/// Identity of a DAG node: the canonical form of the sub-plan it
/// materializes.  Two queries registering equal keys share one node.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum DagKey {
    /// An inner view node (labeled recursive structural fingerprint).
    Inner(NodeFingerprint),
    /// A base-relation leaf.
    Leaf(RelationFingerprint),
}

/// What a DAG node does when a delta reaches it.
enum NodeBody<R: Ring> {
    /// A base-relation leaf: updates addressed to `table` enter here.
    Leaf {
        table: String,
        /// Column variable names in schema order (for binding to a source
        /// table's layout by name).
        col_names: Vec<String>,
        /// Source-table column of each relation variable, once bound.
        binding: Option<Vec<usize>>,
    },
    /// An inner view: joins the affected child's delta against the sibling
    /// views, applies the lift and marginalizes.
    Inner {
        lift: LiftFn<R>,
        /// Child DAG node ids, in the registering query's child order.
        children: Vec<usize>,
        /// One delta plan per child position (probe steps reference DAG
        /// node ids via `DeltaStep::sibling_view`).
        delta_plans: Vec<DeltaPlan>,
    },
}

/// One node of the shared DAG.
struct DagNode<R: Ring> {
    key: DagKey,
    /// Number of registered queries whose plan contains this node.
    refs: usize,
    /// `(parent node id, this node's position among the parent's
    /// children)` — the fan-out edges a produced delta follows.
    parents: Vec<(usize, usize)>,
    body: NodeBody<R>,
}

/// The live node in `nodes[id]`.  Liveness is a refcount invariant: every
/// id handed out by `register` stays live until its last `unregister`, so
/// a dead slot here is engine corruption, not a caller error — panicking
/// in this private helper (not on the public surface) is the contract.
/// Free functions rather than methods so call sites borrow only the
/// `nodes` field, leaving `views`/`scratch`/`stats` free.
fn live_node<R: Ring>(nodes: &[Option<DagNode<R>>], id: usize) -> &DagNode<R> {
    nodes[id].as_ref().expect("node id points at a live slot")
}

fn live_node_mut<R: Ring>(nodes: &mut [Option<DagNode<R>>], id: usize) -> &mut DagNode<R> {
    nodes[id].as_mut().expect("node id points at a live slot")
}

/// Per-registered-query bookkeeping.
struct QueryState {
    #[allow(dead_code)]
    spec: QuerySpec,
    /// DAG ids of the query's root views (its result sinks).
    roots: Vec<usize>,
    /// Each root view's key variables, in this query's own `VarId`s.
    root_key_vars: Vec<Vec<VarId>>,
    /// Every DAG node the query owns a reference on, in creation order
    /// (leaves first, then inner nodes bottom-up).  Reverse order retires
    /// parents before children.
    nodes: Vec<usize>,
}

/// Maximum number of pooled per-pass delta buffers kept across updates.
const SPARE_CAP: usize = 32;

/// The shared multi-query maintenance DAG for ring `R` (see module docs).
pub struct DagEngine<R: Ring> {
    ctx: RingCtx,
    /// Node pool; retired slots are `None` and reused.
    nodes: Vec<Option<DagNode<R>>>,
    /// Materialized view of each node (parallel to `nodes`; retired slots
    /// hold an empty view so their bytes are released).
    views: Vec<MaterializedView<R>>,
    by_key: HashMap<DagKey, usize>,
    free_ids: Vec<usize>,
    queries: Vec<Option<QueryState>>,
    free_queries: Vec<usize>,
    scratch: PropagationScratch<R>,
    /// Recycled per-pass delta buffers (capacity reuse only).
    spare: Vec<Vec<(u64, EncodedKey, R)>>,
    stats: EngineStats,
    /// Whether any data has flowed (load or update) — after which new
    /// leaves require a backfill database.
    touched: bool,
}

impl<R: Ring> DagEngine<R> {
    /// An empty DAG with a fresh dictionary.
    pub fn new() -> Self {
        Self::new_with_ctx(RingCtx::new())
    }

    /// An empty DAG over an explicit ring context.  Lift sets that encode
    /// ring-interior keys (the relational rings) must be built against this
    /// context, exactly as for `Engine::new_with_ctx` — one dictionary per
    /// DAG is the ring-key contract.
    pub fn new_with_ctx(ctx: RingCtx) -> Self {
        DagEngine {
            ctx,
            nodes: Vec::new(),
            views: Vec::new(),
            by_key: HashMap::new(),
            free_ids: Vec::new(),
            queries: Vec::new(),
            free_queries: Vec::new(),
            scratch: PropagationScratch::new(0, 0, false),
            spare: Vec::new(),
            stats: EngineStats::default(),
            touched: false,
        }
    }

    /// The DAG's ring context (shared dictionary handle).
    pub fn ctx(&self) -> &RingCtx {
        &self.ctx
    }

    /// Number of live (non-retired) DAG nodes.
    pub fn live_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Number of registered queries.
    pub fn live_queries(&self) -> usize {
        self.queries.iter().filter(|q| q.is_some()).count()
    }

    /// Whether any live leaf accepts updates addressed to `table`.
    pub fn has_table(&self, table: &str) -> bool {
        self.nodes.iter().flatten().any(|n| match &n.body {
            NodeBody::Leaf { table: t, .. } => t == table,
            _ => false,
        })
    }

    /// The reference count of a DAG node, `None` if the id is retired or
    /// out of range (introspection for the churn suite).
    pub fn node_refcount(&self, id: usize) -> Option<usize> {
        self.nodes.get(id).and_then(|n| n.as_ref()).map(|n| n.refs)
    }

    /// The DAG node ids owned by a registered query, in creation order.
    pub fn query_nodes(&self, query: usize) -> DagResult<Vec<usize>> {
        Ok(self.query(query)?.nodes.clone())
    }

    /// Work counters.  Like the single-tree engine, `rehashes`,
    /// `ring_rehashes` and `table_bytes` are live gauges over the view
    /// tables; the accumulating counters cover work on *shared* levels
    /// once per pass, however many queries consume them (see the DAG
    /// contract in ROADMAP.md for how to read them).
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.stats;
        stats.rehashes = self.views.iter().map(|v| v.rehashes()).sum::<u64>() as usize;
        stats.ring_rehashes = self
            .views
            .iter()
            .map(MaterializedView::payload_rehashes)
            .sum::<u64>() as usize;
        stats.table_bytes = self
            .views
            .iter()
            .map(MaterializedView::table_bytes)
            .sum::<usize>();
        stats
    }

    /// Selects the kernel probe-free levels run ([`KernelMode::Auto`] by
    /// default); mirrors the single-tree engine's `set_kernel_mode` so the
    /// differential suites can pin either path on both drivers.
    pub fn set_kernel_mode(&mut self, mode: KernelMode) {
        self.scratch.mode = mode;
    }

    fn query(&self, query: usize) -> DagResult<&QueryState> {
        self.queries
            .get(query)
            .and_then(|q| q.as_ref())
            .ok_or_else(|| DagError::State(format!("unknown query id {query}")))
    }

    fn alloc_node(
        &mut self,
        key: DagKey,
        view: MaterializedView<R>,
        body: NodeBody<R>,
    ) -> usize {
        let node = DagNode {
            key,
            refs: 0,
            parents: Vec::new(),
            body,
        };
        match self.free_ids.pop() {
            Some(id) => {
                self.nodes[id] = Some(node);
                self.views[id] = view;
                id
            }
            None => {
                self.nodes.push(Some(node));
                self.views.push(view);
                self.nodes.len() - 1
            }
        }
    }

    /// Registers a query (its view tree plus one lift per variable, built
    /// against [`DagEngine::ctx`] where the ring requires it) and returns
    /// its query id.
    ///
    /// Nodes whose fingerprints already exist in the DAG are shared; new
    /// nodes are created and — on a DAG that already holds data —
    /// *backfilled* from materialized state: new leaves load from
    /// `backfill` (required once updates have flowed; the database must
    /// contain the new relations' full history), and new inner nodes are
    /// evaluated from their children's views with no stream replay.
    pub fn register(
        &mut self,
        tree: ViewTree,
        lifts: Vec<LiftFn<R>>,
        backfill: Option<&Database>,
    ) -> DagResult<usize> {
        let spec = tree.spec().clone();
        if lifts.len() != spec.num_vars() {
            return Err(FivmError::InvalidQuery(format!(
                "expected {} lifts (one per variable), got {}",
                spec.num_vars(),
                lifts.len()
            ))
            .into());
        }
        // Validate the tree compiles before touching shared state: the
        // per-node compilation below cannot fail if this passes (same
        // covers, same local variables).
        ExecutionPlan::compile(tree.clone())?;

        let fps = tree_fingerprints_labeled(&tree, &|v| lifts[v].name().to_string());

        // Pre-flight the backfill discipline for new leaves.
        for r in 0..spec.num_relations() {
            let key = DagKey::Leaf(relation_fingerprint(&spec, r));
            if self.by_key.contains_key(&key) {
                continue;
            }
            let def = spec.relation(r);
            match backfill {
                None if self.touched => {
                    return Err(DagError::State(format!(
                        "registering new relation `{}` on a DAG with applied data \
                         requires a backfill database",
                        def.name
                    )));
                }
                Some(db) => {
                    let table = db.table(&def.name).ok_or_else(|| {
                        DagError::State(format!(
                            "backfill database has no table named `{}`",
                            def.name
                        ))
                    })?;
                    for &v in &def.vars {
                        let name = spec.var_name(v);
                        if table.schema.position(name).is_none() {
                            return Err(DagError::State(format!(
                                "backfill table `{}` has no column `{name}`",
                                def.name
                            )));
                        }
                    }
                }
                None => {}
            }
        }

        // Leaves: get-or-create.  View keys use this query's VarIds — the
        // compiled plans are position-only, so sharing across queries with
        // different VarId numberings is sound.
        let mut created: Vec<usize> = Vec::new();
        let mut owned: Vec<usize> = Vec::new();
        let mut leaf_id: Vec<usize> = Vec::with_capacity(spec.num_relations());
        for r in 0..spec.num_relations() {
            let key = DagKey::Leaf(relation_fingerprint(&spec, r));
            let id = match self.by_key.get(&key) {
                Some(&id) => id,
                None => {
                    let def = spec.relation(r);
                    let body = NodeBody::Leaf {
                        table: def.name.clone(),
                        col_names: def
                            .vars
                            .iter()
                            .map(|&v| spec.var_name(v).to_string())
                            .collect(),
                        binding: None,
                    };
                    let id =
                        self.alloc_node(key.clone(), MaterializedView::new(def.vars.clone()), body);
                    self.by_key.insert(key, id);
                    created.push(id);
                    id
                }
            };
            leaf_id.push(id);
            owned.push(id);
        }

        // Inner nodes bottom-up: children exist (larger tree indices) when
        // their parent is assembled.
        let mut max_depth = 0usize;
        let mut max_locals = 0usize;
        let mut node_id_of: Vec<usize> = vec![usize::MAX; tree.len()];
        for idx in tree.bottom_up() {
            let vnode = tree.node(idx);
            let key = DagKey::Inner(fps[idx].clone());
            let id = match self.by_key.get(&key) {
                Some(&id) => {
                    // Fingerprint hit: the DAG contract's "equal names ⟺
                    // equal behavior" leap.  Debug builds verify the
                    // checkable part — the unified node's lift must have
                    // the same behavior shape as the one this query
                    // supplied (backstops the lift-name-dup lint rule).
                    #[cfg(debug_assertions)]
                    if let NodeBody::Inner { lift, .. } = &live_node(&self.nodes, id).body {
                        debug_assert!(
                            lift.same_behavior_shape(&lifts[vnode.var]),
                            "DAG fingerprint unified lift `{}` with `{}`, but their \
                             checkable shapes (identity flag / fma channel set) differ",
                            lifts[vnode.var].name(),
                            lift.name(),
                        );
                    }
                    id
                }
                None => {
                    let children_info: Vec<ChildInfo> = vnode
                        .children
                        .iter()
                        .map(|c| match c {
                            ChildRef::View(v) => ChildInfo {
                                view_idx: node_id_of[*v],
                                cover: tree.node(*v).key_vars.clone(),
                            },
                            ChildRef::Relation(r) => ChildInfo {
                                view_idx: leaf_id[*r],
                                cover: spec.relation(*r).vars.clone(),
                            },
                        })
                        .collect();
                    let mut delta_plans = Vec::with_capacity(children_info.len());
                    for j in 0..children_info.len() {
                        // Secondary indexes register directly on the shared
                        // sibling views; `ensure_index` dedupes identical
                        // column lists and stays deferred until first probed.
                        let views = &mut self.views;
                        let dp = compile_delta_plan(
                            vnode.id,
                            vnode.var,
                            &vnode.key_vars,
                            &vnode.local_vars,
                            &children_info,
                            j,
                            &mut |sibling_view, probe_cols| {
                                views[sibling_view].ensure_index(probe_cols)
                            },
                        )?;
                        max_depth = max_depth.max(dp.steps.len());
                        delta_plans.push(dp);
                    }
                    max_locals = max_locals.max(vnode.local_vars.len());
                    let children: Vec<usize> =
                        children_info.iter().map(|c| c.view_idx).collect();
                    let body = NodeBody::Inner {
                        lift: lifts[vnode.var].clone(),
                        children: children.clone(),
                        delta_plans,
                    };
                    let id = self.alloc_node(
                        key.clone(),
                        MaterializedView::new(vnode.key_vars.clone()),
                        body,
                    );
                    self.by_key.insert(key, id);
                    for (pos, &c) in children.iter().enumerate() {
                        live_node_mut(&mut self.nodes, c).parents.push((id, pos));
                    }
                    created.push(id);
                    id
                }
            };
            node_id_of[idx] = id;
            owned.push(id);
        }

        // Take one reference per distinct node.
        let mut seen = vec![false; self.nodes.len()];
        owned.retain(|&id| !std::mem::replace(&mut seen[id], true));
        for &id in &owned {
            live_node_mut(&mut self.nodes, id).refs += 1;
        }

        // Grow the shared scratch to the new plan's depth/width.
        let pool_enabled = lifts.iter().any(|l| !l.is_identity());
        self.scratch.grow(max_depth, max_locals, pool_enabled);

        // Backfill new leaves from the database (no propagation: a new
        // leaf's parents are all new inner nodes, evaluated next).
        if let Some(db) = backfill {
            for &id in &created {
                let Some(node) = self.nodes[id].as_mut() else {
                    continue;
                };
                let NodeBody::Leaf {
                    table,
                    col_names,
                    binding,
                } = &mut node.body
                else {
                    continue;
                };
                // Pre-flighted at the top of `register`, so these misses
                // are unreachable; typed errors keep the public surface
                // panic-free anyway.
                let Some(table) = db.table(table) else {
                    return Err(DagError::State(format!(
                        "backfill table `{table}` disappeared between pre-flight and bind"
                    )));
                };
                let cols: Vec<usize> = col_names
                    .iter()
                    .map(|n| {
                        table.schema.position(n).ok_or_else(|| {
                            DagError::State(format!(
                                "backfill column `{n}` disappeared between pre-flight and bind"
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?;
                *binding = Some(cols.clone());
                let one = R::one();
                {
                    let mut dict = self.ctx.lock();
                    for (row, mult) in &table.rows {
                        group_row(
                            &mut self.scratch.next,
                            &mut dict,
                            &mut self.stats,
                            &one,
                            Some(&cols),
                            cols.len(),
                            row,
                            *mult,
                        )?;
                    }
                }
                self.scratch.next.retain(|_, p| !p.is_zero());
                let mut buf = self.spare.pop().unwrap_or_default();
                self.scratch.next.drain_into(&mut buf);
                for (hash, key, payload) in buf.iter() {
                    if self.views[id].add_encoded(*hash, key, payload) {
                        self.stats.ring_adds += 1;
                    }
                }
                self.recycle(buf);
            }
        }

        // Evaluate new inner nodes bottom-up from their children's
        // materialized state: child 0's full view fed through the node's
        // delta plan is exactly the view definition.
        for &id in &created {
            let Some(node) = self.nodes[id].as_ref() else {
                continue;
            };
            let NodeBody::Inner {
                children,
                delta_plans,
                ..
            } = &node.body
            else {
                continue;
            };
            let child0 = children[0];
            let index_builds: Vec<(usize, usize)> = delta_plans[0]
                .steps
                .iter()
                .filter_map(|s| match s.probe {
                    ProbeKind::Index(i) => Some((s.sibling_view, i)),
                    ProbeKind::Primary => None,
                })
                .collect();
            for (sibling, i) in index_builds {
                if self.views[sibling].ensure_index_built(i) {
                    self.stats.deferred_index_builds += 1;
                }
            }
            let mut input = self.spare.pop().unwrap_or_default();
            for (hash, key, payload) in self.views[child0].iter_hashed() {
                input.push((hash, key.clone(), payload.clone()));
            }
            {
                let node = live_node(&self.nodes, id);
                let NodeBody::Inner {
                    lift, delta_plans, ..
                } = &node.body
                else {
                    unreachable!("checked above")
                };
                produce_level(
                    &self.views,
                    &self.ctx,
                    &delta_plans[0],
                    lift,
                    &input,
                    &mut self.scratch,
                    &mut self.stats,
                );
            }
            self.scratch.next.retain(|_, p| !p.is_zero());
            let mut out = self.spare.pop().unwrap_or_default();
            self.scratch.next.drain_into(&mut out);
            for (hash, key, payload) in out.iter() {
                if self.views[id].add_encoded(*hash, key, payload) {
                    self.stats.ring_adds += 1;
                }
            }
            self.recycle(input);
            self.recycle(out);
        }

        let roots: Vec<usize> = tree.roots().iter().map(|&r| node_id_of[r]).collect();
        let root_key_vars: Vec<Vec<VarId>> = tree
            .roots()
            .iter()
            .map(|&r| tree.node(r).key_vars.clone())
            .collect();
        let state = QueryState {
            spec,
            roots,
            root_key_vars,
            nodes: owned,
        };
        let qid = match self.free_queries.pop() {
            Some(q) => {
                self.queries[q] = Some(state);
                q
            }
            None => {
                self.queries.push(Some(state));
                self.queries.len() - 1
            }
        };
        Ok(qid)
    }

    /// Unregisters a query: drops one reference from every node it owns
    /// and retires nodes whose refcount reaches zero — views are replaced
    /// by empty ones (releasing their `table_bytes`), fan-out edges into
    /// the retired node are removed from surviving children, and slot ids
    /// are recycled.  Shared survivors are untouched.
    pub fn unregister(&mut self, query: usize) -> DagResult<()> {
        let state = self
            .queries
            .get_mut(query)
            .and_then(Option::take)
            .ok_or_else(|| DagError::State(format!("unknown query id {query}")))?;
        self.free_queries.push(query);
        for &id in &state.nodes {
            live_node_mut(&mut self.nodes, id).refs -= 1;
        }
        // Reverse creation order = parents before children, so a retired
        // parent unlinks itself from still-live children.
        for &id in state.nodes.iter().rev() {
            if live_node(&self.nodes, id).refs > 0 {
                continue;
            }
            let Some(node) = self.nodes[id].take() else {
                unreachable!("slot checked live just above")
            };
            self.by_key.remove(&node.key);
            if let NodeBody::Inner { children, .. } = &node.body {
                for &c in children {
                    if let Some(child) = self.nodes[c].as_mut() {
                        child.parents.retain(|&(p, _)| p != id);
                    }
                }
            }
            self.views[id] = MaterializedView::new(Vec::new());
            self.free_ids.push(id);
        }
        Ok(())
    }

    /// Loads an initial database: every live leaf binds to the table with
    /// its relation's name (by column name) and the table's rows propagate
    /// as inserts through the whole DAG.
    pub fn load_database(&mut self, db: &Database) -> DagResult<()> {
        let leaves: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.as_ref().map(|n| &n.body), Some(NodeBody::Leaf { .. })))
            .map(|(i, _)| i)
            .collect();
        for leaf in leaves {
            let (table_name, col_names) = match &live_node(&self.nodes, leaf).body {
                NodeBody::Leaf {
                    table, col_names, ..
                } => (table.clone(), col_names.clone()),
                NodeBody::Inner { .. } => unreachable!("filtered to leaves"),
            };
            let table = db.table(&table_name).ok_or_else(|| {
                FivmError::InvalidUpdate(format!("database has no table named `{table_name}`"))
            })?;
            let cols = col_names
                .iter()
                .map(|n| {
                    table.schema.position(n).ok_or_else(|| {
                        FivmError::InvalidUpdate(format!(
                            "table bound to relation `{table_name}` has no column `{n}`"
                        ))
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            match &mut live_node_mut(&mut self.nodes, leaf).body {
                NodeBody::Leaf { binding, .. } => *binding = Some(cols.clone()),
                NodeBody::Inner { .. } => unreachable!("filtered to leaves"),
            }
            let one = R::one();
            let mut input_rows = 0usize;
            {
                let mut dict = self.ctx.lock();
                for (row, mult) in &table.rows {
                    input_rows += 1;
                    group_row(
                        &mut self.scratch.next,
                        &mut dict,
                        &mut self.stats,
                        &one,
                        Some(&cols),
                        cols.len(),
                        row,
                        *mult,
                    )?;
                }
            }
            self.propagate_from_leaf(leaf, input_rows)?;
        }
        self.touched = true;
        Ok(())
    }

    /// Applies an update batch addressed by table name — **one** pass over
    /// the DAG per matching leaf, fanning out to every query above it.
    pub fn apply_update(&mut self, update: &Update) -> DagResult<UpdateOutcome> {
        let leaves: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| match n.as_ref().map(|n| &n.body) {
                Some(NodeBody::Leaf { table, .. }) => *table == update.table,
                _ => false,
            })
            .map(|(i, _)| i)
            .collect();
        if leaves.is_empty() {
            return Err(FivmError::InvalidUpdate(format!(
                "update targets unknown relation `{}`",
                update.table
            ))
            .into());
        }
        let mut outcome = UpdateOutcome::default();
        for leaf in leaves {
            let (binding, arity) = match &live_node(&self.nodes, leaf).body {
                NodeBody::Leaf {
                    binding, col_names, ..
                } => (binding.clone(), col_names.len()),
                NodeBody::Inner { .. } => unreachable!("filtered to leaves"),
            };
            let one = R::one();
            let mut input_rows = 0usize;
            {
                let mut dict = self.ctx.lock();
                for (row, mult) in &update.rows {
                    input_rows += 1;
                    group_row(
                        &mut self.scratch.next,
                        &mut dict,
                        &mut self.stats,
                        &one,
                        binding.as_deref(),
                        arity,
                        row,
                        *mult,
                    )?;
                }
            }
            outcome = outcome.merge(&self.propagate_from_leaf(leaf, input_rows)?);
        }
        self.touched = true;
        Ok(outcome)
    }

    /// Propagates the grouped delta waiting in `scratch.next` from a leaf
    /// up the DAG (see module docs for why the affected subgraph is an
    /// out-tree and each node is visited once).
    fn propagate_from_leaf(
        &mut self,
        leaf: usize,
        input_rows: usize,
    ) -> DagResult<UpdateOutcome> {
        self.stats.updates_applied += 1;
        self.stats.rows_applied += input_rows;
        let mut outcome = UpdateOutcome {
            input_rows,
            delta_entries: 0,
        };
        self.scratch.next.retain(|_, p| !p.is_zero());
        if self.scratch.next.is_empty() {
            return Ok(outcome);
        }

        // The leaf delta: apply to the leaf view, then fan out.
        let mut arena: Vec<Vec<(u64, EncodedKey, R)>> = Vec::new();
        let mut buf = self.spare.pop().unwrap_or_default();
        self.scratch.next.drain_into(&mut buf);
        for (hash, key, payload) in buf.iter() {
            if self.views[leaf].add_encoded(*hash, key, payload) {
                self.stats.ring_adds += 1;
            }
        }
        outcome.delta_entries += buf.len();
        arena.push(buf);
        let mut queue: VecDeque<(usize, usize, usize)> = self.nodes[leaf]
            .as_ref()
            .expect("update leaf is live")
            .parents
            .iter()
            .map(|&(p, pos)| (p, pos, 0))
            .collect();

        while let Some((node_id, child_pos, delta_idx)) = queue.pop_front() {
            // Build the deferred indexes this level probes (mutable view
            // phase, before the immutable probing pass).
            let index_builds: Vec<(usize, usize)> = {
                let node = self.nodes[node_id].as_ref().expect("parent is live");
                let NodeBody::Inner { delta_plans, .. } = &node.body else {
                    unreachable!("leaves have no children")
                };
                delta_plans[child_pos]
                    .steps
                    .iter()
                    .filter_map(|s| match s.probe {
                        ProbeKind::Index(i) => Some((s.sibling_view, i)),
                        ProbeKind::Primary => None,
                    })
                    .collect()
            };
            for (sibling, i) in index_builds {
                if self.views[sibling].ensure_index_built(i) {
                    self.stats.deferred_index_builds += 1;
                }
            }

            // Produce this level's delta (views immutable).
            {
                let node = self.nodes[node_id].as_ref().expect("parent is live");
                let NodeBody::Inner {
                    lift, delta_plans, ..
                } = &node.body
                else {
                    unreachable!("leaves have no children")
                };
                produce_level(
                    &self.views,
                    &self.ctx,
                    &delta_plans[child_pos],
                    lift,
                    &arena[delta_idx],
                    &mut self.scratch,
                    &mut self.stats,
                );
            }

            // Apply to the node's own view, then hand the delta to every
            // parent (the arena keeps it alive for all of them).
            self.scratch.next.retain(|_, p| !p.is_zero());
            let mut out = self.spare.pop().unwrap_or_default();
            self.scratch.next.drain_into(&mut out);
            for (hash, key, payload) in out.iter() {
                if self.views[node_id].add_encoded(*hash, key, payload) {
                    self.stats.ring_adds += 1;
                }
            }
            outcome.delta_entries += out.len();
            if out.is_empty() {
                self.recycle(out);
                continue;
            }
            let out_idx = arena.len();
            arena.push(out);
            let parents = self.nodes[node_id]
                .as_ref()
                .expect("parent is live")
                .parents
                .clone();
            for (p, pos) in parents {
                queue.push_back((p, pos, out_idx));
            }
        }

        for buf in arena {
            self.recycle(buf);
        }
        self.stats.delta_entries += outcome.delta_entries;
        Ok(outcome)
    }

    /// Returns a drained delta buffer's payloads to the scratch pool and
    /// keeps the vector's capacity for the next pass.
    fn recycle(&mut self, mut buf: Vec<(u64, EncodedKey, R)>) {
        self.scratch.recycle_buffer(&mut buf);
        if self.spare.len() < SPARE_CAP {
            self.spare.push(buf);
        }
    }

    /// A query's result for queries without group-by variables: the
    /// product of its root views' payloads at the empty key.
    pub fn result(&self, query: usize) -> DagResult<R> {
        let state = self.query(query)?;
        let empty = EncodedKey::empty();
        let hash = empty.fx_hash();
        let mut acc = R::one();
        for &root in &state.roots {
            match self.views[root].get_encoded(hash, &empty) {
                Some(p) => acc = acc.mul(p),
                None => return Ok(R::zero()),
            }
        }
        Ok(acc)
    }

    /// A query's result as a relation over its free variables (general
    /// form; a singleton over the empty key without group-by).  Keys are
    /// decoded through the DAG's dictionary in the query's own variable
    /// numbering.
    pub fn result_relation(&self, query: usize) -> DagResult<Relation<R>> {
        let state = self.query(query)?;
        let mut acc: Option<Relation<R>> = None;
        for (i, &root) in state.roots.iter().enumerate() {
            let key_vars = state.root_key_vars[i].clone();
            let view = &self.views[root];
            let rel = self.ctx.with_dict(|dict| {
                Relation::from_entries(
                    key_vars,
                    view.iter().map(|(k, p)| (dict.decode_key(k), p.clone())),
                )
            });
            acc = Some(match acc {
                None => rel,
                Some(prev) => prev.natural_join(&rel),
            });
        }
        Ok(acc.unwrap_or_else(|| {
            let mut r = Relation::new(Vec::new());
            r.add(Vec::new().into_boxed_slice(), R::one());
            r
        }))
    }

    /// The materialized view of a query's root, as a relation (useful for
    /// inspecting shared sinks in tests).
    pub fn root_relations(&self, query: usize) -> DagResult<Vec<Relation<R>>> {
        let state = self.query(query)?;
        Ok(state
            .roots
            .iter()
            .enumerate()
            .map(|(i, &root)| {
                let key_vars = state.root_key_vars[i].clone();
                let view = &self.views[root];
                self.ctx.with_dict(|dict| {
                    Relation::from_entries(
                        key_vars,
                        view.iter().map(|(k, p)| (dict.decode_key(k), p.clone())),
                    )
                })
            })
            .collect())
    }
}

impl<R: Ring> Default for DagEngine<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R: Ring> std::fmt::Debug for DagEngine<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DagEngine")
            .field("live_nodes", &self.live_nodes())
            .field("live_queries", &self.live_queries())
            .field("stats", &self.stats)
            .finish()
    }
}

/// Runs one propagation level: joins `input` (the affected child's delta)
/// against the sibling views per `dp`, applies `lift`, marginalizes and
/// leaves the produced delta in `scratch.next`.  This is the body of the
/// single-tree engine's per-level loop, expressed over the kernel.
fn produce_level<R: Ring>(
    views: &[MaterializedView<R>],
    ctx: &RingCtx,
    dp: &DeltaPlan,
    lift: &LiftFn<R>,
    input: &[(u64, EncodedKey, R)],
    scratch: &mut PropagationScratch<R>,
    stats: &mut EngineStats,
) {
    debug_assert!(scratch.next.is_empty(), "scratch delta not drained");
    if let Some(direct) = &dp.direct {
        // Probe-free level: the output key is a plain projection of the
        // delta key — no assignment scatter, no probes.  The kernel picks
        // the scalar or columnar path per the scratch's mode.
        direct_level(
            direct,
            lift,
            ctx,
            input,
            &mut scratch.next,
            &mut scratch.columns,
            &mut scratch.pool,
            scratch.mode,
            stats,
        );
    } else {
        // Probe level: the kernel scatters, probes the sibling views and
        // accumulates — scalar per-row walk or columnar run fusion per the
        // scratch's mode.
        probe_level(
            views,
            ctx,
            dp,
            lift,
            input,
            &mut scratch.next,
            &mut scratch.columns,
            &mut scratch.memo,
            &mut scratch.assignment,
            &mut scratch.partials,
            &mut scratch.pool,
            scratch.pool_enabled,
            scratch.mode,
            stats,
        );
    }
}

/// Send audit (mirrors the engine's): the durable registry moves the DAG
/// across threads, so it must stay `Send`.
#[allow(dead_code)]
fn dag_is_send<R: Ring>() {
    fn assert_send<T: Send>() {}
    assert_send::<DagEngine<R>>();
}
