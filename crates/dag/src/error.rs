//! Typed errors for the multi-query DAG surface.

use fivm_cdc::CdcError;
use fivm_common::FivmError;
use std::fmt;

/// `Result` alias for the DAG surface.
pub type DagResult<T> = std::result::Result<T, DagError>;

/// An error raised by the multi-query DAG.
#[derive(Debug)]
pub enum DagError {
    /// A query-level error (invalid spec, variable order, update shape).
    Query(FivmError),
    /// A durability-layer error from the changelog (durable registry only).
    Cdc(CdcError),
    /// A registry-level invariant violation: unknown query id, ring
    /// mismatch on a typed result accessor, backfill without a database on
    /// a loaded DAG, and similar.
    State(String),
    /// A combination this crate deliberately does not wire (e.g. a registry
    /// over sharded engines) — see the DAG contract in ROADMAP.md.
    Unsupported(String),
}

impl DagError {
    /// A stable machine-readable kind, mirroring `FivmError::kind` /
    /// `ShardError::kind` so tests and telemetry can dispatch without
    /// string-matching display text.
    pub fn kind(&self) -> &'static str {
        match self {
            DagError::Query(e) => e.kind(),
            DagError::Cdc(_) => "cdc",
            DagError::State(_) => "state",
            DagError::Unsupported(_) => "unsupported",
        }
    }
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Query(e) => write!(f, "{e}"),
            DagError::Cdc(e) => write!(f, "changelog error: {e}"),
            DagError::State(msg) => write!(f, "registry state error: {msg}"),
            DagError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for DagError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DagError::Query(e) => Some(e),
            DagError::Cdc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FivmError> for DagError {
    fn from(e: FivmError) -> Self {
        DagError::Query(e)
    }
}

impl From<CdcError> for DagError {
    fn from(e: CdcError) -> Self {
        DagError::Cdc(e)
    }
}
