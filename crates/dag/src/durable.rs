//! A [`QueryRegistry`] behind a CDC changelog.
//!
//! The DAG holds the fleet's materialized state in memory; this wrapper
//! makes the *stream* durable with the same discipline as
//! `fivm_cdc::DurableEngine`: every batch is appended and fsynced to the
//! changelog **before** it is applied, so an acknowledged batch survives
//! a crash. Recovery rebuilds a fresh registry (the caller re-registers
//! the same queries — registration is metadata, not state), loads the
//! initial database, and replays the changelog **once** — one propagation
//! pass per logged batch, shared prefixes maintained once, every sink
//! converging bit-identically to the pre-crash fleet.

use crate::error::DagResult;
use crate::registry::QueryRegistry;
use fivm_cdc::{read_changelog, ChangelogWriter};
use fivm_core::UpdateOutcome;
use fivm_relation::{Database, Update};
use std::path::{Path, PathBuf};

/// A query registry whose input stream is journaled to a CDC changelog.
pub struct DurableRegistry {
    registry: QueryRegistry,
    log: ChangelogWriter,
    path: PathBuf,
}

impl DurableRegistry {
    /// Starts a fresh durable registry: truncates any changelog at `path`
    /// and journals every subsequent batch there. The registry should
    /// already hold its registrations and initial database load — only
    /// updates applied *through* this wrapper are journaled.
    pub fn create(registry: QueryRegistry, path: impl AsRef<Path>) -> DagResult<Self> {
        let path = path.as_ref().to_path_buf();
        let log = ChangelogWriter::create(&path)?;
        Ok(DurableRegistry {
            registry,
            log,
            path,
        })
    }

    /// Recovers after a crash: `registry` must carry the same
    /// registrations as the lost instance; `db` is the same initial
    /// database it was loaded with. The changelog at `path` is replayed
    /// once (torn tails ignored, as in `read_changelog`), then reopened
    /// for appending.
    pub fn recover(
        mut registry: QueryRegistry,
        db: &Database,
        path: impl AsRef<Path>,
    ) -> DagResult<Self> {
        let path = path.as_ref().to_path_buf();
        registry.load_database(db)?;
        let (batches, _end) = read_changelog(&path)?;
        for batch in &batches {
            registry.apply_update(&batch.to_update())?;
        }
        let log = ChangelogWriter::open_append(&path)?;
        Ok(DurableRegistry {
            registry,
            log,
            path,
        })
    }

    /// Journals the batch durably (append + fsync), then applies it to
    /// the fleet. A batch whose append fails is never applied.
    pub fn apply_update(&mut self, update: &Update) -> DagResult<UpdateOutcome> {
        self.log.append_update(update)?;
        self.registry.apply_update(update)
    }

    /// The wrapped registry (result accessors, stats, introspection).
    pub fn registry(&self) -> &QueryRegistry {
        &self.registry
    }

    /// Mutable access to the wrapped registry. Registrations made here
    /// are **not** journaled — recovery re-registers from caller metadata.
    pub fn registry_mut(&mut self) -> &mut QueryRegistry {
        &mut self.registry
    }

    /// The changelog path this registry journals to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consumes the wrapper, returning the in-memory registry.
    pub fn into_registry(self) -> QueryRegistry {
        self.registry
    }
}
