#![forbid(unsafe_code)]
//! # fivm-dag — the multi-query maintenance DAG
//!
//! The single-tree engine (`fivm-core`) maintains *one* query. Real
//! deployments maintain fleets of them over the same feeds — and the
//! F-IVM view trees of related queries (same variable order, different
//! group-bys or aggregates over overlapping relation sets) share large
//! structural prefixes. This crate folds N registered queries into one
//! shared DAG so a common prefix is materialized and maintained **once**
//! per update pass, fanning its delta out to every query above it.
//!
//! - [`DagEngine`] — the shared DAG for one ring type: fingerprint-keyed
//!   node pool, one propagation pass per updated leaf, refcounted runtime
//!   `register` / `unregister` with backfill from materialized state.
//! - [`QueryRegistry`] — the multi-ring front door: COUNT / COVAR /
//!   gen-COVAR + MI / relational queries register under one roof, each
//!   ring group backed by its own `DagEngine`.
//! - [`DurableRegistry`] — a registry behind a CDC changelog, recoverable
//!   by replaying the log once over a re-registered registry.
//!
//! Node identity, sharing limits and statistics semantics are specified
//! in the "DAG contract" section of ROADMAP.md.

pub mod durable;
pub mod engine;
pub mod error;
pub mod registry;

pub use durable::DurableRegistry;
pub use engine::{DagEngine, DagKey};
pub use error::{DagError, DagResult};
pub use registry::{QueryId, QueryKind, QueryRegistry};
