//! The multi-ring front door over per-ring [`DagEngine`]s.
//!
//! Rust's type system does not admit one heterogeneous node pool — a
//! `MaterializedView<R>` payload type is fixed per engine — so the
//! registry runs **one shared DAG per ring type**: COUNT queries share
//! the `i64` DAG, COVAR queries the `Cofactor` DAG, gen-COVAR and MI
//! queries the `GenCofactor` DAG, relational queries the `RelValue` DAG.
//! Prefix sharing happens freely *within* a ring group (MI and gen-COVAR
//! land in the same group, so their keyed delta streams unify wherever
//! the lift names match); across ring types, only the input batch is
//! shared. This is a documented deviation from full cross-ring sharing —
//! see the DAG contract in ROADMAP.md.

use crate::engine::DagEngine;
use crate::error::{DagError, DagResult};
use fivm_core::apps::{count_lifts, covar_lifts, gen_covar_lifts, mi_lifts, relational_lifts};
use fivm_core::kernel::KernelMode;
use fivm_core::{BinSpec, EngineStats, UpdateOutcome};
use fivm_query::ViewTree;
use fivm_relation::{Database, Relation, Update};
use fivm_ring::{Cofactor, GenCofactor, RelValue, RingCtx};
use std::collections::HashMap;
use fivm_common::VarId;

/// Which aggregate family a registered query computes — selects the ring
/// group and the per-variable lift set.
#[derive(Clone, Debug)]
pub enum QueryKind {
    /// `COUNT` / `SUM(1)` over the group-by keys (ring `i64`).
    Count,
    /// Continuous covariance matrix (ring `Cofactor`).
    Covar,
    /// Generalized covariance over mixed continuous/categorical features
    /// (ring `GenCofactor`).
    GenCovar,
    /// Mutual information via binned marginals (ring `GenCofactor`;
    /// continuous variables discretized by the supplied binnings).
    Mi(HashMap<VarId, BinSpec>),
    /// Full relational result (ring `RelValue`).
    Relational,
}

/// Opaque handle to a registered query, valid until `unregister`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryId(pub usize);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Group {
    Count,
    Covar,
    Gen,
    Relational,
}

impl Group {
    fn name(self) -> &'static str {
        match self {
            Group::Count => "count",
            Group::Covar => "covar",
            Group::Gen => "gen-cofactor",
            Group::Relational => "relational",
        }
    }
}

/// A fleet of maintained queries over shared DAGs, one per ring type.
pub struct QueryRegistry {
    count: DagEngine<i64>,
    covar: DagEngine<Cofactor>,
    gen: DagEngine<GenCofactor>,
    relational: DagEngine<RelValue>,
    /// Registry slot → (ring group, group-local query id).
    slots: Vec<Option<(Group, usize)>>,
    free_slots: Vec<usize>,
}

impl QueryRegistry {
    /// An empty registry (each ring group gets its own dictionary).
    pub fn new() -> Self {
        QueryRegistry {
            count: DagEngine::new(),
            covar: DagEngine::new(),
            gen: DagEngine::new(),
            relational: DagEngine::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
        }
    }

    /// Sharded-engine parity gate: a registry over sharded engines is a
    /// deliberately unwired combination — the DAG's shared-prefix pass
    /// assumes one address space per ring group.  `shards <= 1` degrades
    /// to the plain registry; anything larger is a typed `Unsupported`
    /// error (see the DAG contract in ROADMAP.md).
    pub fn sharded(shards: usize) -> DagResult<Self> {
        if shards <= 1 {
            Ok(Self::new())
        } else {
            Err(DagError::Unsupported(format!(
                "QueryRegistry over sharded engines ({shards} shards) is not wired: \
                 the shared-prefix propagation pass assumes a single address space \
                 per ring group; run one registry per shard and merge sinks instead"
            )))
        }
    }

    /// The ring context of the group `kind` maps to — relational lifts or
    /// binnings that encode values must use this dictionary.
    pub fn ctx_for(&self, kind: &QueryKind) -> &RingCtx {
        match group_of(kind) {
            Group::Count => self.count.ctx(),
            Group::Covar => self.covar.ctx(),
            Group::Gen => self.gen.ctx(),
            Group::Relational => self.relational.ctx(),
        }
    }

    /// Registers a query under `kind`, building its lift set from the
    /// query spec against the group's ring context. `backfill` is required
    /// when the query introduces relations new to its group after data has
    /// flowed (same discipline as [`DagEngine::register`]).
    pub fn register(
        &mut self,
        tree: ViewTree,
        kind: QueryKind,
        backfill: Option<&Database>,
    ) -> DagResult<QueryId> {
        let spec = tree.spec().clone();
        let (group, inner) = match &kind {
            QueryKind::Count => {
                let lifts = count_lifts(&spec);
                (Group::Count, self.count.register(tree, lifts, backfill)?)
            }
            QueryKind::Covar => {
                let lifts = covar_lifts(&spec)?;
                (Group::Covar, self.covar.register(tree, lifts, backfill)?)
            }
            QueryKind::GenCovar => {
                let lifts = gen_covar_lifts(&spec, self.gen.ctx());
                (Group::Gen, self.gen.register(tree, lifts, backfill)?)
            }
            QueryKind::Mi(binnings) => {
                let lifts = mi_lifts(&spec, binnings, self.gen.ctx())?;
                (Group::Gen, self.gen.register(tree, lifts, backfill)?)
            }
            QueryKind::Relational => {
                let lifts = relational_lifts(&spec, self.relational.ctx());
                (
                    Group::Relational,
                    self.relational.register(tree, lifts, backfill)?,
                )
            }
        };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slots[s] = Some((group, inner));
                s
            }
            None => {
                self.slots.push(Some((group, inner)));
                self.slots.len() - 1
            }
        };
        Ok(QueryId(slot))
    }

    /// Unregisters a query, retiring DAG nodes no other registered query
    /// references.
    pub fn unregister(&mut self, id: QueryId) -> DagResult<()> {
        let (group, inner) = self.resolve(id)?;
        match group {
            Group::Count => self.count.unregister(inner)?,
            Group::Covar => self.covar.unregister(inner)?,
            Group::Gen => self.gen.unregister(inner)?,
            Group::Relational => self.relational.unregister(inner)?,
        }
        self.slots[id.0] = None;
        self.free_slots.push(id.0);
        Ok(())
    }

    /// Loads an initial database into every ring group that has live
    /// leaves (groups with no registered queries are skipped).
    pub fn load_database(&mut self, db: &Database) -> DagResult<()> {
        if self.count.live_nodes() > 0 {
            self.count.load_database(db)?;
        }
        if self.covar.live_nodes() > 0 {
            self.covar.load_database(db)?;
        }
        if self.gen.live_nodes() > 0 {
            self.gen.load_database(db)?;
        }
        if self.relational.live_nodes() > 0 {
            self.relational.load_database(db)?;
        }
        Ok(())
    }

    /// Applies one update batch across **all** ring groups maintaining the
    /// updated relation — each group runs one propagation pass, however
    /// many of its queries consume the relation. Errors if no registered
    /// query reads the table.
    pub fn apply_update(&mut self, update: &Update) -> DagResult<UpdateOutcome> {
        let mut outcome = UpdateOutcome::default();
        let mut hit = false;
        if self.count.has_table(&update.table) {
            outcome = outcome.merge(&self.count.apply_update(update)?);
            hit = true;
        }
        if self.covar.has_table(&update.table) {
            outcome = outcome.merge(&self.covar.apply_update(update)?);
            hit = true;
        }
        if self.gen.has_table(&update.table) {
            outcome = outcome.merge(&self.gen.apply_update(update)?);
            hit = true;
        }
        if self.relational.has_table(&update.table) {
            outcome = outcome.merge(&self.relational.apply_update(update)?);
            hit = true;
        }
        if !hit {
            return Err(DagError::State(format!(
                "no registered query maintains relation `{}`",
                update.table
            )));
        }
        Ok(outcome)
    }

    fn resolve(&self, id: QueryId) -> DagResult<(Group, usize)> {
        self.slots
            .get(id.0)
            .and_then(|s| *s)
            .ok_or_else(|| DagError::State(format!("unknown registry query id {}", id.0)))
    }

    fn expect_group(&self, id: QueryId, want: Group) -> DagResult<usize> {
        let (group, inner) = self.resolve(id)?;
        if group != want {
            return Err(DagError::State(format!(
                "query {} is in the {} group, not {}",
                id.0,
                group.name(),
                want.name()
            )));
        }
        Ok(inner)
    }

    /// Scalar COUNT result of a `QueryKind::Count` query without group-by.
    pub fn count_result(&self, id: QueryId) -> DagResult<i64> {
        let inner = self.expect_group(id, Group::Count)?;
        self.count.result(inner)
    }

    /// Grouped COUNT result of a `QueryKind::Count` query.
    pub fn count_result_relation(&self, id: QueryId) -> DagResult<Relation<i64>> {
        let inner = self.expect_group(id, Group::Count)?;
        self.count.result_relation(inner)
    }

    /// Scalar cofactor result of a `QueryKind::Covar` query.
    pub fn covar_result(&self, id: QueryId) -> DagResult<Cofactor> {
        let inner = self.expect_group(id, Group::Covar)?;
        self.covar.result(inner)
    }

    /// Grouped cofactor result of a `QueryKind::Covar` query.
    pub fn covar_result_relation(&self, id: QueryId) -> DagResult<Relation<Cofactor>> {
        let inner = self.expect_group(id, Group::Covar)?;
        self.covar.result_relation(inner)
    }

    /// Scalar generalized-cofactor result of a `GenCovar` or `Mi` query.
    pub fn gen_result(&self, id: QueryId) -> DagResult<GenCofactor> {
        let inner = self.expect_group(id, Group::Gen)?;
        self.gen.result(inner)
    }

    /// Grouped generalized-cofactor result of a `GenCovar` or `Mi` query.
    pub fn gen_result_relation(&self, id: QueryId) -> DagResult<Relation<GenCofactor>> {
        let inner = self.expect_group(id, Group::Gen)?;
        self.gen.result_relation(inner)
    }

    /// Relational result of a `QueryKind::Relational` query.
    pub fn relational_result(&self, id: QueryId) -> DagResult<Relation<RelValue>> {
        let inner = self.expect_group(id, Group::Relational)?;
        self.relational.result_relation(inner)
    }

    /// Live DAG nodes across all ring groups.
    pub fn total_live_nodes(&self) -> usize {
        self.count.live_nodes()
            + self.covar.live_nodes()
            + self.gen.live_nodes()
            + self.relational.live_nodes()
    }

    /// Registered queries across all ring groups.
    pub fn live_queries(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Merged work counters across all ring groups.
    pub fn stats(&self) -> EngineStats {
        self.count
            .stats()
            .merge(&self.covar.stats())
            .merge(&self.gen.stats())
            .merge(&self.relational.stats())
    }

    /// Forces the propagation kernel (scalar per-row vs columnar batch) on
    /// every ring group's DAG; see [`DagEngine::set_kernel_mode`].
    pub fn set_kernel_mode(&mut self, mode: KernelMode) {
        self.count.set_kernel_mode(mode);
        self.covar.set_kernel_mode(mode);
        self.gen.set_kernel_mode(mode);
        self.relational.set_kernel_mode(mode);
    }

    /// The COUNT-group DAG (introspection for tests/benches).
    pub fn count_dag(&self) -> &DagEngine<i64> {
        &self.count
    }

    /// The COVAR-group DAG.
    pub fn covar_dag(&self) -> &DagEngine<Cofactor> {
        &self.covar
    }

    /// The gen-cofactor-group DAG (gen-COVAR + MI).
    pub fn gen_dag(&self) -> &DagEngine<GenCofactor> {
        &self.gen
    }

    /// The relational-group DAG.
    pub fn relational_dag(&self) -> &DagEngine<RelValue> {
        &self.relational
    }

    /// The group-local DAG query id behind a registry handle (for
    /// node-level introspection via the group DAG accessors).
    pub fn dag_query_id(&self, id: QueryId) -> DagResult<usize> {
        Ok(self.resolve(id)?.1)
    }
}

impl std::fmt::Debug for QueryRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryRegistry")
            .field("live_queries", &self.live_queries())
            .field("live_nodes", &self.total_live_nodes())
            .finish()
    }
}

impl Default for QueryRegistry {
    fn default() -> Self {
        Self::new()
    }
}

fn group_of(kind: &QueryKind) -> Group {
    match kind {
        QueryKind::Count => Group::Count,
        QueryKind::Covar => Group::Covar,
        QueryKind::GenCovar | QueryKind::Mi(_) => Group::Gen,
        QueryKind::Relational => Group::Relational,
    }
}
