//! Ablation A2: maintaining the COVAR aggregate through the factorized view
//! tree (F-IVM) versus maintaining the materialized join result and folding
//! the aggregate over its deltas (DBToaster-style first-order IVM), and
//! versus naive re-evaluation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fivm_baselines::{JoinMaintenance, NaiveReevaluation};
use fivm_bench::Workload;
use fivm_core::AggregateLayout;
use fivm_ring::{Cofactor, LiftFn};
use std::hint::black_box;
use std::time::Duration;

fn covar_lifts(spec: &fivm_query::QuerySpec) -> Vec<LiftFn<Cofactor>> {
    let layout = AggregateLayout::of(spec);
    let mut lifts = vec![LiftFn::identity(); spec.num_vars()];
    for (idx, &v) in layout.vars.iter().enumerate() {
        lifts[v] = fivm_ring::lift::cofactor_continuous_lift(layout.dim(), idx, &layout.names[idx]);
    }
    lifts
}

fn bench_factorization(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_factorization");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let workload = Workload::retailer(
        fivm_data::RetailerConfig::default(),
        fivm_data::StreamConfig {
            bulks: 1,
            bulk_size: 200,
            delete_fraction: 0.2,
            seed: 19,
        },
        true,
    );

    group.bench_function("fivm_view_tree", |b| {
        let mut engine = workload.covar_engine();
        engine.load_database(&workload.database).unwrap();
        b.iter_batched(
            || workload.updates.clone(),
            |bulk| {
                for u in bulk {
                    black_box(engine.apply_update(&u).unwrap());
                }
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("join_maintenance", |b| {
        let mut jm = JoinMaintenance::new(workload.spec.clone(), covar_lifts(&workload.spec)).unwrap();
        jm.load_database(&workload.database).unwrap();
        b.iter_batched(
            || workload.updates.clone(),
            |bulk| {
                for u in bulk {
                    jm.apply_update(&u).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("naive_reevaluation", |b| {
        let mut naive =
            NaiveReevaluation::new(workload.spec.clone(), covar_lifts(&workload.spec)).unwrap();
        naive.load_database(&workload.database).unwrap();
        b.iter_batched(
            || workload.updates.clone(),
            |bulk| {
                for u in bulk {
                    naive.apply_update(&u).unwrap();
                }
                black_box(naive.result())
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_factorization);
criterion_main!(benches);
