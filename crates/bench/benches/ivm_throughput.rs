//! Macro benchmark: applying one bulk of updates to the Retailer and
//! Favorita workloads under the COUNT, COVAR and MI rings (Experiment E2).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fivm_bench::{ProbeAblation, Workload};
use std::hint::black_box;
use std::time::Duration;

fn stream() -> fivm_data::StreamConfig {
    fivm_data::StreamConfig {
        bulks: 1,
        bulk_size: 500,
        delete_fraction: 0.2,
        seed: 3,
    }
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("ivm_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let retailer = Workload::retailer(fivm_data::RetailerConfig::default(), stream(), true);
    let favorita = Workload::favorita(fivm_data::FavoritaConfig::default(), stream());

    group.bench_function("retailer_count_bulk500", |b| {
        let mut engine = retailer.count_engine();
        engine.load_database(&retailer.database).unwrap();
        b.iter_batched(
            || retailer.updates.clone(),
            |bulk| {
                for u in bulk {
                    black_box(engine.apply_update(&u).unwrap());
                }
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("retailer_covar_bulk500", |b| {
        let mut engine = retailer.covar_engine();
        engine.load_database(&retailer.database).unwrap();
        b.iter_batched(
            || retailer.updates.clone(),
            |bulk| {
                for u in bulk {
                    black_box(engine.apply_update(&u).unwrap());
                }
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("retailer_mi_bulk500", |b| {
        let mut engine = retailer.mi_engine();
        engine.load_database(&retailer.database).unwrap();
        b.iter_batched(
            || retailer.updates.clone(),
            |bulk| {
                for u in bulk {
                    black_box(engine.apply_update(&u).unwrap());
                }
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("favorita_gen_covar_bulk500", |b| {
        let mut engine = favorita.gen_covar_engine();
        engine.load_database(&favorita.database).unwrap();
        b.iter_batched(
            || favorita.updates.clone(),
            |bulk| {
                for u in bulk {
                    black_box(engine.apply_update(&u).unwrap());
                }
            },
            BatchSize::SmallInput,
        )
    });

    // Ablation of batched grouping: the same 500-row bulk applied one row
    // at a time (each row is its own batch, so nothing groups and every
    // row walks the whole leaf-to-root path alone).  The gap between this
    // and `retailer_covar_bulk500` is what batch grouping buys.
    group.bench_function("retailer_covar_bulk500_rowwise", |b| {
        let mut engine = retailer.covar_engine();
        engine.load_database(&retailer.database).unwrap();
        b.iter_batched(
            || retailer.updates.clone(),
            |bulk| {
                for u in bulk {
                    for (row, mult) in u.rows.iter() {
                        let rel = engine
                            .tree()
                            .spec()
                            .relation_id(&u.table)
                            .expect("known relation");
                        black_box(
                            engine
                                .apply_rows(rel, std::iter::once((row.clone(), *mult)))
                                .unwrap(),
                        );
                    }
                }
            },
            BatchSize::SmallInput,
        )
    });

    // Ablation of the key representation: the identical key set and probe
    // sequence under boxed `Value` tuples (FxHashMap) vs dictionary-encoded
    // keys with precomputed hashes (RawTable).  The gap is the probe-path
    // gain of hash-once encoding, isolated from the rest of the engine.
    let ablation = ProbeAblation::from_workload(&retailer);
    group.bench_function("retailer_probe_boxed_keys", |b| {
        b.iter(|| black_box(ablation.run_boxed()))
    });
    group.bench_function("retailer_probe_encoded_keys", |b| {
        b.iter(|| black_box(ablation.run_encoded()))
    });

    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
