//! Ablation A1: maintaining the whole COVAR batch as one compound cofactor
//! payload versus maintaining every scalar aggregate with its own engine.
//! The difference is the sharing benefit of the degree-m matrix ring.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fivm_baselines::UnsharedCovar;
use fivm_bench::Workload;
use std::hint::black_box;
use std::time::Duration;

fn bench_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sharing");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let workload = Workload::retailer(
        fivm_data::RetailerConfig::default(),
        fivm_data::StreamConfig {
            bulks: 1,
            bulk_size: 200,
            delete_fraction: 0.2,
            seed: 17,
        },
        true,
    );

    group.bench_function("shared_cofactor_ring", |b| {
        let mut engine = workload.covar_engine();
        engine.load_database(&workload.database).unwrap();
        b.iter_batched(
            || workload.updates.clone(),
            |bulk| {
                for u in bulk {
                    black_box(engine.apply_update(&u).unwrap());
                }
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("unshared_scalar_aggregates", |b| {
        let mut unshared = UnsharedCovar::new(workload.tree.clone()).unwrap();
        unshared.load_database(&workload.database).unwrap();
        b.iter_batched(
            || workload.updates.clone(),
            |bulk| {
                for u in bulk {
                    unshared.apply_update(&u).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_sharing);
criterion_main!(benches);
