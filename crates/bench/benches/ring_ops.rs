//! Microbenchmarks of the ring operations that dominate view maintenance:
//! cofactor addition/multiplication, generalized-cofactor multiplication and
//! relational-value joins.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fivm_common::EncodedValue;
use fivm_ring::{Cofactor, GenCofactor, RelValue, Ring};
use std::hint::black_box;
use std::time::Duration;

fn cofactor_of(dim: usize, seed: u64) -> Cofactor {
    let mut acc = Cofactor::zero();
    for i in 0..4u64 {
        let mut t = Cofactor::one();
        for idx in 0..dim {
            t = t.mul(&Cofactor::lift(dim, idx, ((seed + i) * (idx as u64 + 3) % 17) as f64));
        }
        acc.add_assign(&t);
    }
    acc
}

fn gen_cofactor_of(dim: usize, seed: u64) -> GenCofactor {
    let mut acc = GenCofactor::zero();
    for i in 0..4u64 {
        let mut t = GenCofactor::one();
        for idx in 0..dim {
            let lifted = if idx % 2 == 0 {
                GenCofactor::lift_continuous(dim, idx, ((seed + i) % 13) as f64)
            } else {
                GenCofactor::lift_categorical(
                    dim,
                    idx,
                    idx,
                    EncodedValue::int(((seed + i) % 5) as i64),
                )
            };
            t = t.mul(&lifted);
        }
        acc.add_assign(&t);
    }
    acc
}

fn bench_rings(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_ops");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for dim in [3usize, 8] {
        let a = cofactor_of(dim, 1);
        let b = cofactor_of(dim, 2);
        group.bench_function(format!("cofactor_mul_dim{dim}"), |bencher| {
            bencher.iter(|| black_box(a.mul(black_box(&b))))
        });
        group.bench_function(format!("cofactor_add_dim{dim}"), |bencher| {
            bencher.iter(|| black_box(a.add(black_box(&b))))
        });

        // In-place counterparts: same math, reused buffers, no allocation.
        // Comparing these against `mul`/`add` above is the bench-level
        // witness that the in-place ring API pays off.
        group.bench_function(format!("cofactor_mul_into_dim{dim}"), |bencher| {
            let mut out = a.mul(&b);
            bencher.iter(|| {
                a.mul_into(black_box(&b), &mut out);
                black_box(&out);
            })
        });
        group.bench_function(format!("cofactor_fma_dim{dim}"), |bencher| {
            let mut acc = a.mul(&b);
            let mut sign = 1i64;
            bencher.iter(|| {
                // Alternate signs so the accumulator stays bounded.
                acc.fma_scaled(black_box(&a), black_box(&b), sign);
                sign = -sign;
                black_box(&acc);
            })
        });
        group.bench_function(format!("cofactor_fma_lift_dim{dim}"), |bencher| {
            let mut acc = a.mul(&b);
            let mut sign = 1i64;
            bencher.iter(|| {
                acc.fma_lift_continuous(black_box(&a), dim, 1, 2.5, sign);
                sign = -sign;
                black_box(&acc);
            })
        });

        let ga = gen_cofactor_of(dim, 1);
        let gb = gen_cofactor_of(dim, 2);
        group.bench_function(format!("gen_cofactor_fma_lift_cat_dim{dim}"), |bencher| {
            let mut acc = ga.mul(&gb);
            let mut sign = 1i64;
            bencher.iter(|| {
                acc.fma_lift_categorical(
                    black_box(&ga),
                    dim,
                    1,
                    1,
                    EncodedValue::int(3),
                    sign,
                );
                sign = -sign;
                black_box(&acc);
            })
        });
        group.bench_function(format!("gen_cofactor_mul_dim{dim}"), |bencher| {
            bencher.iter(|| black_box(ga.mul(black_box(&gb))))
        });
        group.bench_function(format!("gen_cofactor_fma_dim{dim}"), |bencher| {
            let mut acc = ga.mul(&gb);
            let mut sign = 1i64;
            bencher.iter(|| {
                acc.fma_scaled(black_box(&ga), black_box(&gb), sign);
                sign = -sign;
                black_box(&acc);
            })
        });
    }

    // Relational-value join on small relations (the categorical hot path).
    let mut left = RelValue::empty();
    let mut right = RelValue::empty();
    for i in 0..16i64 {
        left.add_assign(&RelValue::weighted(0, EncodedValue::int(i), 1.0));
        right.add_assign(&RelValue::weighted(1, EncodedValue::int(i % 4), 1.0));
    }
    group.bench_function("relvalue_join_16x16", |bencher| {
        bencher.iter_batched(
            || (left.clone(), right.clone()),
            |(l, r)| black_box(l.mul(&r)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("relvalue_join_16x16_into", |bencher| {
        let mut out = left.mul(&right);
        bencher.iter(|| {
            left.mul_into(black_box(&right), &mut out);
            black_box(&out);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rings);
criterion_main!(benches);
