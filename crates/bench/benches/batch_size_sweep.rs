//! Benchmark: COVAR maintenance cost as the update-bulk size grows
//! (the demo processes bulks of 10K updates; smaller bulks stress per-update
//! overhead, larger bulks amortize it).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use fivm_bench::Workload;
use std::hint::black_box;
use std::time::Duration;

fn bench_batch_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_size_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for bulk_size in [10usize, 100, 1_000] {
        let workload = Workload::retailer(
            fivm_data::RetailerConfig::default(),
            fivm_data::StreamConfig {
                bulks: 1,
                bulk_size,
                delete_fraction: 0.2,
                seed: 13,
            },
            true,
        );
        group.throughput(Throughput::Elements(bulk_size as u64));
        group.bench_with_input(
            BenchmarkId::new("covar_bulk", bulk_size),
            &workload,
            |b, w| {
                let mut engine = w.covar_engine();
                engine.load_database(&w.database).unwrap();
                b.iter_batched(
                    || w.updates.clone(),
                    |bulk| {
                        for u in bulk {
                            black_box(engine.apply_update(&u).unwrap());
                        }
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_sizes);
criterion_main!(benches);
