//! Benchmark of the query-compilation path: heuristic variable orders, view
//! tree construction and execution-plan compilation for the Retailer and
//! Favorita queries.

use criterion::{criterion_group, criterion_main, Criterion};
use fivm_core::ExecutionPlan;
use fivm_query::{EliminationHeuristic, VariableOrder, ViewTree};
use std::hint::black_box;
use std::time::Duration;

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_tree_compile");
    group
        .sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    let retailer = fivm_data::retailer::retailer_query_mixed();
    let favorita = fivm_data::favorita::favorita_query();

    for (name, spec) in [("retailer", &retailer), ("favorita", &favorita)] {
        group.bench_function(format!("{name}_min_degree_order"), |b| {
            b.iter(|| {
                black_box(
                    VariableOrder::heuristic(black_box(spec), EliminationHeuristic::MinDegree)
                        .unwrap(),
                )
            })
        });
        group.bench_function(format!("{name}_full_plan_compile"), |b| {
            b.iter(|| {
                let vo =
                    VariableOrder::heuristic(spec, EliminationHeuristic::MinFill).unwrap();
                let tree = ViewTree::new(spec.clone(), vo).unwrap();
                black_box(ExecutionPlan::compile(tree).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
