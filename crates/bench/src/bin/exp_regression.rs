//! Experiment E4 — the "Regression" tab (Figure 2b): maintain the COVAR
//! matrix under bulks of updates and resume batch gradient descent from the
//! previous parameters after every bulk, comparing against the closed-form
//! solution on the same maintained COVAR matrix.

use fivm_bench::{print_table, Workload};
use fivm_core::AggregateLayout;
use fivm_ml::{DenseCovar, RidgeSolver};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (cfg, stream) = if quick {
        (
            fivm_data::RetailerConfig::tiny(),
            fivm_data::StreamConfig {
                bulks: 2,
                bulk_size: 100,
                delete_fraction: 0.2,
                seed: 11,
            },
        )
    } else {
        (
            fivm_data::RetailerConfig::default(),
            fivm_data::StreamConfig {
                bulks: 5,
                bulk_size: 2_000,
                delete_fraction: 0.2,
                seed: 11,
            },
        )
    };
    let workload = Workload::retailer(cfg, stream, true);
    let layout = AggregateLayout::of(&workload.spec);
    let label = layout.label.expect("label declared");

    let mut engine = workload.covar_engine();
    engine.load_database(&workload.database).unwrap();

    let solver = RidgeSolver {
        lambda: 1e-3,
        learning_rate: 0.5,
        max_iterations: 50_000,
        tolerance: 1e-9,
    };

    println!("== E4: ridge regression on Retailer (label = inventoryunits, λ = {}) ==\n", solver.lambda);

    let mut params: Option<Vec<f64>> = None;
    let mut rows = Vec::new();
    let solve = |stage: String,
                     engine: &fivm_core::Engine<fivm_ring::Cofactor>,
                     params: &mut Option<Vec<f64>>|
     -> Vec<String> {
        let covar = DenseCovar::from_cofactor(&engine.result(), &layout.names, label).unwrap();
        let gd = solver
            .solve_gradient_descent(&covar, params.as_deref())
            .unwrap();
        let exact = solver.solve_closed_form(&covar).unwrap();
        let max_dev = gd
            .params
            .iter()
            .zip(exact.params.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        *params = Some(gd.params.clone());
        vec![
            stage,
            format!("{:.0}", covar.count),
            format!("{}", gd.iterations),
            format!("{:.4}", gd.objective),
            format!("{max_dev:.2e}"),
        ]
    };

    rows.push(solve("initial".to_string(), &engine, &mut params));
    for (i, bulk) in workload.updates.iter().enumerate() {
        engine.apply_update(bulk).unwrap();
        rows.push(solve(format!("after bulk {}", i + 1), &engine, &mut params));
    }
    print_table(
        &["stage", "training tuples", "BGD iterations (warm start)", "objective", "max |BGD - closed form|"],
        &rows,
    );

    // Show the final model.
    let covar = DenseCovar::from_cofactor(&engine.result(), &layout.names, label).unwrap();
    let model = solver.solve_closed_form(&covar).unwrap();
    println!("\nfinal model parameters:");
    let rows: Vec<Vec<String>> = model
        .feature_names
        .iter()
        .zip(model.params.iter())
        .map(|(n, p)| vec![n.clone(), format!("{p:.6}")])
        .collect();
    print_table(&["feature", "θ"], &rows);
}
