//! Experiment E3 — the "Model Selection" tab (Figure 2a): rank attributes by
//! their mutual information with the label `inventoryunits` and keep the
//! ones above a threshold, refreshing after every bulk of updates.

use fivm_bench::{print_table, Workload};
use fivm_core::AggregateLayout;
use fivm_ml::rank_by_mi;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (cfg, stream) = if quick {
        (
            fivm_data::RetailerConfig::tiny(),
            fivm_data::StreamConfig {
                bulks: 2,
                bulk_size: 100,
                delete_fraction: 0.2,
                seed: 7,
            },
        )
    } else {
        (
            fivm_data::RetailerConfig::default(),
            fivm_data::StreamConfig {
                bulks: 5,
                bulk_size: 2_000,
                delete_fraction: 0.2,
                seed: 7,
            },
        )
    };
    let threshold = 0.02;
    let workload = Workload::retailer(cfg, stream, false);
    let layout = AggregateLayout::of(&workload.spec);
    let label = layout.label.expect("retailer query declares a label");

    let mut engine = workload.mi_engine();
    engine.load_database(&workload.database).unwrap();

    println!("== E3: model selection on Retailer (label = inventoryunits, threshold = {threshold}) ==\n");

    let report = |stage: &str, engine: &fivm_core::Engine<fivm_ring::GenCofactor>| {
        let payload = engine.result();
        let selection = rank_by_mi(&payload, layout.dim(), label, threshold);
        println!("-- {stage}: training tuples = {:.0}", payload.count());
        let rows: Vec<Vec<String>> = selection
            .ranking
            .iter()
            .map(|(attr, mi)| {
                vec![
                    layout.names[*attr].clone(),
                    format!("{mi:.5}"),
                    if selection.is_selected(*attr) { "selected".into() } else { "-".into() },
                ]
            })
            .collect();
        print_table(&["attribute", "MI(attribute, label)", "status"], &rows);
        println!();
        selection.selected.len()
    };

    report("initial database", &engine);
    for (i, bulk) in workload.updates.iter().enumerate() {
        engine.apply_update(bulk).unwrap();
        let selected = report(&format!("after bulk {} ({} updates)", i + 1, bulk.len()), &engine);
        println!("   {} attributes currently selected\n", selected);
    }
}
