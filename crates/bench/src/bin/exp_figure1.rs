//! Experiment E1 — reproduces the worked example of Figure 1.
//!
//! Prints, for the toy database `R(A,B)`, `S(A,C,D)`, the maintained payloads
//! of the views `V_R`, `V_S` and the query result `Q` under four rings
//! (count, COVAR over continuous attributes, COVAR with categorical `C`,
//! MI), and then replays the figure's update `δR` scenario.

use fivm_bench::print_table;
use fivm_common::Value;
use fivm_core::apps;
use fivm_data::figure1::{figure1_database, figure1_tree};
use fivm_relation::{tuple, Update};
use std::collections::HashMap;

fn main() {
    let db = figure1_database();
    println!("== Figure 1: toy database ==");
    println!("R = {{(a1,b1), (a2,b2)}}, S = {{(a1,c1,d1), (a1,c2,d3), (a2,c2,d2)}}\n");

    // --- Count aggregate (Z ring) -------------------------------------------------
    let mut count = apps::count_engine(figure1_tree(false)).unwrap();
    count.load_database(&db).unwrap();
    println!("[Z ring]       COUNT(R ⋈ S) = {}", count.result());

    // --- COVAR over continuous B, C, D -------------------------------------------
    let mut covar = apps::covar_engine(figure1_tree(false)).unwrap();
    covar.load_database(&db).unwrap();
    let q = covar.result();
    println!("[degree-3 ring] COVAR payload (continuous B, C, D):");
    let names = ["B", "C", "D"];
    let mut rows = vec![vec![
        "count".to_string(),
        format!("{}", q.count()),
        String::new(),
        String::new(),
    ]];
    for (i, name) in names.iter().enumerate() {
        rows.push(vec![
            format!("SUM({name})"),
            format!("{}", q.sum(i)),
            format!("SUM({name}*{name})"),
            format!("{}", q.prod(i, i)),
        ]);
    }
    rows.push(vec![
        "SUM(B*C)".into(),
        format!("{}", q.prod(0, 1)),
        "SUM(B*D) / SUM(C*D)".into(),
        format!("{} / {}", q.prod(0, 2), q.prod(1, 2)),
    ]);
    print_table(&["aggregate", "value", "aggregate", "value"], &rows);

    // --- COVAR with categorical C --------------------------------------------------
    let mut gen = apps::gen_covar_engine(figure1_tree(true)).unwrap();
    gen.load_database(&db).unwrap();
    let g = gen.result();
    println!("\n[generalized ring] COVAR with categorical C:");
    println!("  count              = {}", g.count());
    println!("  SUM(1) GROUP BY C  = {:?}", collect(&g.sum(1), gen.ctx()));
    println!("  SUM(B) GROUP BY C  = {:?}", collect(&g.prod(0, 1), gen.ctx()));
    println!("  SUM(D) GROUP BY C  = {:?}", collect(&g.prod(1, 2), gen.ctx()));
    println!("  SUM(B*D)           = {}", g.prod(0, 2).scalar_part());

    // --- MI payload (all categorical) ----------------------------------------------
    let spec = {
        let mut b = fivm_query::QuerySpec::builder("figure1_mi");
        let a = b.key("A");
        let bb = b.categorical_feature("B");
        let c = b.categorical_feature("C");
        let d = b.categorical_feature("D");
        b.relation("R", &[a, bb]);
        b.relation("S", &[a, c, d]);
        b.build().unwrap()
    };
    let a = spec.var_id("A").unwrap();
    let c = spec.var_id("C").unwrap();
    let mut parents = vec![None; 4];
    parents[spec.var_id("B").unwrap()] = Some(a);
    parents[c] = Some(a);
    parents[spec.var_id("D").unwrap()] = Some(c);
    let tree = fivm_query::ViewTree::from_parent_vars(spec, &parents).unwrap();
    let mut mi = apps::mi_engine(tree, &HashMap::new()).unwrap();
    mi.load_database(&db).unwrap();
    let m = mi.result();
    println!("\n[MI payload] C_∅ = {}", m.count());
    println!("  C_B  = {:?}", collect(&m.sum(0), mi.ctx()));
    println!("  C_BC = {:?}", collect(&m.prod(0, 1), mi.ctx()));
    println!("  I(B,C) = {:.6} nats", fivm_ml::mutual_information(&m, 0, 1));
    println!("  I(C,D) = {:.6} nats", fivm_ml::mutual_information(&m, 1, 2));

    // --- Delta propagation for updates to R (right side of the figure) -------------
    println!("\n== Updates δR (insert (a1,b1), insert (a2,b2), delete (a1,b1)) ==");
    let mut engine = apps::count_engine(figure1_tree(false)).unwrap();
    engine
        .apply_rows(1, figure1_database().table("S").unwrap().rows.clone())
        .unwrap();
    let steps = [
        (Update::inserts("R", vec![tuple([Value::int(1), Value::int(1)])]), "insert (a1, b1)"),
        (Update::inserts("R", vec![tuple([Value::int(2), Value::int(2)])]), "insert (a2, b2)"),
        (Update::deletes("R", vec![tuple([Value::int(1), Value::int(1)])]), "delete (a1, b1)"),
    ];
    let mut rows = Vec::new();
    for (update, label) in steps {
        let outcome = engine.apply_update(&update).unwrap();
        rows.push(vec![
            label.to_string(),
            format!("{}", outcome.delta_entries),
            format!("{}", engine.result()),
        ]);
    }
    print_table(&["update", "delta entries touched", "COUNT(R ⋈ S)"], &rows);
}

fn collect(r: &fivm_ring::RelValue, ctx: &fivm_ring::RingCtx) -> Vec<(String, f64)> {
    ctx.with_dict(|dict| {
        r.decode_entries(dict)
            .into_iter()
            .map(|(k, w)| {
                let key = k
                    .iter()
                    .map(|(_, v)| v.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                (key, w)
            })
            .collect()
    })
}
