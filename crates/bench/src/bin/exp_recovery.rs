//! Experiment E-REC — durability costs: logged ingest, changelog replay,
//! and snapshot save/restore.
//!
//! Measures the `fivm_cdc` layer on the Retailer and Favorita workloads
//! for the COUNT, COVAR and MI applications, and merges `REC-*` records
//! into `BENCH_ivm.json` (replacing any previous `REC-*` rows, keeping
//! everything `exp_throughput` wrote):
//!
//! * `REC-ingest-<app>`  — rows/second through [`DurableEngine`] with the
//!   write-ahead changelog on (the durable-path counterpart of the plain
//!   engine rates in the `BENCH` baseline);
//! * `REC-replay-<app>`  — rows/second recovering from the changelog
//!   alone (base load + full replay, no snapshot);
//! * `REC-save-<app>`    — snapshot serialization: `seconds` to write,
//!   `table_bytes` = snapshot file size;
//! * `REC-restore-<app>` — snapshot restore: `seconds` to re-bind and
//!   load, `table_bytes` = snapshot file size, `rehashes` after the
//!   restore (the durability contract pins it to 0);
//! * `REC-gc-<mode>-<app>` — **acked** ingest through the CDC service
//!   front end at small batch sizes (`bulk_size` = rows per submitted
//!   batch), comparing fsync intervals: `perbatch` is the
//!   [`DurableEngine`] discipline (one fsync per batch), `group64` is
//!   [`CdcService`] group commit (up to 64 batches per fsync).  Time is
//!   submit-everything + `flush()` wall clock — nothing counts until it
//!   is durably acknowledged.  Queue-depth percentiles sampled at each
//!   submit ride in the otherwise-unused counter fields:
//!   `delta_entries` = p50, `probes` = p95, `probe_hits` = p99, and
//!   `table_bytes` = peak changelog bytes on disk.
//!
//! Run with `--quick` for a smoke-test configuration; `--json PATH`
//! overrides the artifact location.

use fivm_bench::{append_bench_json, print_table, BenchRecord, Workload};
use fivm_cdc::{recover, CdcService, DurableEngine, ServiceConfig, SNAPSHOT_FILE};
use fivm_core::Engine;
use fivm_relation::{Database, Update};
use fivm_ring::PersistRing;
use std::path::Path;
use std::time::Instant;

/// One durable run: logged ingest of the whole stream, a snapshot, a
/// snapshot restore, and a log-only replay — timed, cross-checked, and
/// reported as four `REC-*` records plus a printed summary row.
#[allow(clippy::too_many_arguments)]
fn run_recovery<R: PersistRing>(
    dataset: &str,
    app: &str,
    make_engine: &dyn Fn() -> Engine<R>,
    db: &Database,
    updates: &[Update],
    bulk_size: usize,
    dir: &Path,
    records: &mut Vec<BenchRecord>,
    rows: &mut Vec<Vec<String>>,
) {
    let total_rows: usize = updates.iter().map(Update::len).sum();
    let _ = std::fs::remove_dir_all(dir);

    // Durable ingest: every batch is synced to the changelog before the
    // engine applies it.
    let mut durable = DurableEngine::create(make_engine(), dir).expect("durable engine");
    durable.load_database(db).expect("load");
    let t = Instant::now();
    for u in updates {
        durable.apply_update(u).expect("durable update");
    }
    let ingest_secs = t.elapsed().as_secs_f64();

    // Snapshot save (atomic temp + rename).
    let t = Instant::now();
    let snapshot_seq = durable.snapshot().expect("snapshot");
    let save_secs = t.elapsed().as_secs_f64();
    let snapshot_bytes = std::fs::metadata(dir.join(SNAPSHOT_FILE))
        .expect("snapshot file")
        .len() as usize;
    let reference = durable.engine().result_relation();
    drop(durable);

    // Snapshot restore: re-bind, load, replay the (empty) tail.
    let snap_path = dir.join(SNAPSHOT_FILE);
    let mut restored = make_engine();
    let t = Instant::now();
    let report =
        recover::recover(&mut restored, db, Some(&snap_path), dir).expect("snapshot restore");
    let restore_secs = t.elapsed().as_secs_f64();
    assert_eq!(report.snapshot_seq, Some(snapshot_seq));
    assert_eq!(report.replayed_batches, 0);
    let restore_rehashes = {
        let stats = restored.stats();
        stats.rehashes + stats.ring_rehashes
    };
    assert_eq!(restore_rehashes, 0, "restore must not rehash ({dataset}/{app})");

    // Log-only replay: base database + the full changelog.
    let mut replayed = make_engine();
    let t = Instant::now();
    let report = recover::recover(&mut replayed, db, None, dir).expect("changelog replay");
    let replay_secs = t.elapsed().as_secs_f64();
    assert_eq!(report.last_seq, (updates.len() + 1) as u64 - 1);

    // Both recovery paths must land on the reference result.
    for (engine, path) in [(&restored, "restore"), (&replayed, "replay")] {
        let got = engine.result_relation();
        assert_eq!(
            got.len(),
            reference.len(),
            "{dataset}/{app}: {path} diverged from the durable run"
        );
    }

    for (kind, seconds, updates, table_bytes, rehashes) in [
        ("ingest", ingest_secs, total_rows, 0, 0),
        ("replay", replay_secs, total_rows, 0, 0),
        ("save", save_secs, 0, snapshot_bytes, 0),
        ("restore", restore_secs, 0, snapshot_bytes, restore_rehashes),
    ] {
        records.push(BenchRecord {
            dataset: dataset.to_string(),
            app: format!("REC-{kind}-{app}"),
            bulk_size,
            updates,
            seconds,
            delta_entries: 0,
            ring_adds: 0,
            ring_muls: 0,
            probes: 0,
            probe_hits: 0,
            rehashes,
            table_bytes,
        });
    }
    rows.push(vec![
        dataset.to_string(),
        app.to_string(),
        format!("{:.0}", total_rows as f64 / ingest_secs),
        format!("{:.0}", total_rows as f64 / replay_secs),
        format!("{:.1}", snapshot_bytes as f64 / 1024.0),
        format!("{:.2}", save_secs * 1e3),
        format!("{:.2}", restore_secs * 1e3),
    ]);
    let _ = std::fs::remove_dir_all(dir);
}

/// Splits each update into batches of at most `rows` rows — the
/// small-batch regime where per-batch fsync cost dominates and group
/// commit pays off.
fn rechunk(updates: &[Update], rows: usize) -> Vec<Update> {
    let mut out = Vec::new();
    for u in updates {
        for chunk in u.rows.chunks(rows) {
            out.push(Update::with_multiplicities(u.table.clone(), chunk.to_vec()));
        }
    }
    out
}

fn percentile(sorted: &[usize], q: f64) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

/// Group-commit experiment: acked rows/second through the CDC service at
/// small batch sizes, per-batch fsync vs group commit.  Returns the two
/// acked rates `(perbatch, group64)` for the summary table.
#[allow(clippy::too_many_arguments)]
fn run_group_commit(
    dataset: &str,
    app: &str,
    make_engine: &dyn Fn() -> Engine<i64>,
    db: &Database,
    updates: &[Update],
    batch_rows: usize,
    dir: &Path,
    records: &mut Vec<BenchRecord>,
) -> (f64, f64) {
    let batches = rechunk(updates, batch_rows);
    let total_rows: usize = batches.iter().map(Update::len).sum();
    let mut rates = [0.0f64; 2];

    for (slot, (mode, group_max)) in [("perbatch", 1usize), ("group64", 64)].iter().enumerate() {
        let _ = std::fs::remove_dir_all(dir);
        let mut engine = make_engine();
        engine.load_database(db).expect("load");
        let config = ServiceConfig {
            queue_capacity: 4096,
            group_commit_max: *group_max,
            ..ServiceConfig::default()
        };
        let service = CdcService::start(engine, dir, config).expect("service");

        let mut depths = Vec::with_capacity(batches.len());
        let t = Instant::now();
        for u in &batches {
            service.submit(u.clone()).expect("submit");
            depths.push(service.queue_depth());
        }
        service.flush().expect("flush");
        let acked_secs = t.elapsed().as_secs_f64();

        let done = service.shutdown();
        assert!(done.error.is_none(), "{dataset}/{app}/{mode}: service errored");
        assert_eq!(done.durable_seq, batches.len() as u64);
        depths.sort_unstable();
        rates[slot] = total_rows as f64 / acked_secs;

        records.push(BenchRecord {
            dataset: dataset.to_string(),
            app: format!("REC-gc-{mode}-{app}"),
            bulk_size: batch_rows,
            updates: total_rows,
            seconds: acked_secs,
            delta_entries: percentile(&depths, 0.50),
            ring_adds: 0,
            ring_muls: 0,
            probes: percentile(&depths, 0.95),
            probe_hits: percentile(&depths, 0.99),
            rehashes: 0,
            table_bytes: done.stats.max_changelog_bytes as usize,
        });
    }
    let _ = std::fs::remove_dir_all(dir);
    (rates[0], rates[1])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_ivm.json".to_string());

    let (retailer_cfg, favorita_cfg, stream) = if quick {
        (
            fivm_data::RetailerConfig::tiny(),
            fivm_data::FavoritaConfig::tiny(),
            fivm_data::StreamConfig {
                bulks: 6,
                bulk_size: 100,
                delete_fraction: 0.2,
                seed: 42,
            },
        )
    } else {
        (
            fivm_data::RetailerConfig::default(),
            fivm_data::FavoritaConfig::default(),
            fivm_data::StreamConfig {
                bulks: 40,
                bulk_size: 1_000,
                delete_fraction: 0.2,
                seed: 42,
            },
        )
    };
    let bulk_size = stream.bulk_size;
    let scratch = std::env::temp_dir().join(format!("fivm_exp_recovery_{}", std::process::id()));

    let gc_batch_rows = 20;
    let mut records = Vec::new();
    let mut rows = Vec::new();
    let mut gc_rows = Vec::new();

    // Retailer: continuous query — COUNT, COVAR (cofactor ring), MI.
    let w = Workload::retailer(retailer_cfg, stream, true);
    run_recovery(
        w.dataset.name(),
        "COUNT",
        &|| w.count_engine(),
        &w.database,
        &w.updates,
        bulk_size,
        &scratch,
        &mut records,
        &mut rows,
    );
    run_recovery(
        w.dataset.name(),
        "COVAR",
        &|| w.covar_engine(),
        &w.database,
        &w.updates,
        bulk_size,
        &scratch,
        &mut records,
        &mut rows,
    );
    run_recovery(
        w.dataset.name(),
        "MI",
        &|| w.mi_engine(),
        &w.database,
        &w.updates,
        bulk_size,
        &scratch,
        &mut records,
        &mut rows,
    );
    let (per_batch, grouped) = run_group_commit(
        w.dataset.name(),
        "COUNT",
        &|| w.count_engine(),
        &w.database,
        &w.updates,
        gc_batch_rows,
        &scratch,
        &mut records,
    );
    gc_rows.push(vec![
        w.dataset.name().to_string(),
        "COUNT".to_string(),
        format!("{per_batch:.0}"),
        format!("{grouped:.0}"),
        format!("{:.1}x", grouped / per_batch),
    ]);

    // Favorita: mixed features — COUNT, generalized COVAR, MI.
    let w = Workload::favorita(favorita_cfg, stream);
    run_recovery(
        w.dataset.name(),
        "COUNT",
        &|| w.count_engine(),
        &w.database,
        &w.updates,
        bulk_size,
        &scratch,
        &mut records,
        &mut rows,
    );
    run_recovery(
        w.dataset.name(),
        "COVAR",
        &|| w.gen_covar_engine(),
        &w.database,
        &w.updates,
        bulk_size,
        &scratch,
        &mut records,
        &mut rows,
    );
    run_recovery(
        w.dataset.name(),
        "MI",
        &|| w.mi_engine(),
        &w.database,
        &w.updates,
        bulk_size,
        &scratch,
        &mut records,
        &mut rows,
    );
    let (per_batch, grouped) = run_group_commit(
        w.dataset.name(),
        "COUNT",
        &|| w.count_engine(),
        &w.database,
        &w.updates,
        gc_batch_rows,
        &scratch,
        &mut records,
    );
    gc_rows.push(vec![
        w.dataset.name().to_string(),
        "COUNT".to_string(),
        format!("{per_batch:.0}"),
        format!("{grouped:.0}"),
        format!("{:.1}x", grouped / per_batch),
    ]);

    println!("\nDurability: logged ingest, replay recovery, snapshot costs");
    print_table(
        &[
            "dataset",
            "app",
            "ingest rows/s",
            "replay rows/s",
            "snapshot KiB",
            "save ms",
            "restore ms",
        ],
        &rows,
    );
    println!("\n(REC-restore rehashes are asserted 0: restore re-buckets from stored hashes.)");

    println!(
        "\nGroup commit: acked rows/s through the CDC service ({gc_batch_rows}-row batches)"
    );
    print_table(
        &["dataset", "app", "per-batch fsync", "group commit (64)", "speedup"],
        &gc_rows,
    );

    match append_bench_json(&json_path, "REC-", &records) {
        Ok(()) => println!("merged {} REC-* records into {json_path}", records.len()),
        Err(e) => {
            eprintln!("failed to write {json_path}: {e}");
            std::process::exit(1);
        }
    }
}
