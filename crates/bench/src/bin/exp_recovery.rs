//! Experiment E-REC — durability costs: logged ingest, changelog replay,
//! and snapshot save/restore.
//!
//! Measures the `fivm_cdc` layer on the Retailer and Favorita workloads
//! for the COUNT, COVAR and MI applications, and merges `REC-*` records
//! into `BENCH_ivm.json` (replacing any previous `REC-*` rows, keeping
//! everything `exp_throughput` wrote):
//!
//! * `REC-ingest-<app>`  — rows/second through [`DurableEngine`] with the
//!   write-ahead changelog on (the durable-path counterpart of the plain
//!   engine rates in the `BENCH` baseline);
//! * `REC-replay-<app>`  — rows/second recovering from the changelog
//!   alone (base load + full replay, no snapshot);
//! * `REC-save-<app>`    — snapshot serialization: `seconds` to write,
//!   `table_bytes` = snapshot file size;
//! * `REC-restore-<app>` — snapshot restore: `seconds` to re-bind and
//!   load, `table_bytes` = snapshot file size, `rehashes` after the
//!   restore (the durability contract pins it to 0).
//!
//! Run with `--quick` for a smoke-test configuration; `--json PATH`
//! overrides the artifact location.

use fivm_bench::{append_bench_json, print_table, BenchRecord, Workload};
use fivm_cdc::{recover, DurableEngine, CHANGELOG_FILE, SNAPSHOT_FILE};
use fivm_core::Engine;
use fivm_relation::{Database, Update};
use fivm_ring::PersistRing;
use std::path::Path;
use std::time::Instant;

/// One durable run: logged ingest of the whole stream, a snapshot, a
/// snapshot restore, and a log-only replay — timed, cross-checked, and
/// reported as four `REC-*` records plus a printed summary row.
#[allow(clippy::too_many_arguments)]
fn run_recovery<R: PersistRing>(
    dataset: &str,
    app: &str,
    make_engine: &dyn Fn() -> Engine<R>,
    db: &Database,
    updates: &[Update],
    bulk_size: usize,
    dir: &Path,
    records: &mut Vec<BenchRecord>,
    rows: &mut Vec<Vec<String>>,
) {
    let total_rows: usize = updates.iter().map(Update::len).sum();
    let _ = std::fs::remove_dir_all(dir);

    // Durable ingest: every batch is synced to the changelog before the
    // engine applies it.
    let mut durable = DurableEngine::create(make_engine(), dir).expect("durable engine");
    durable.load_database(db).expect("load");
    let t = Instant::now();
    for u in updates {
        durable.apply_update(u).expect("durable update");
    }
    let ingest_secs = t.elapsed().as_secs_f64();

    // Snapshot save (atomic temp + rename).
    let t = Instant::now();
    let snapshot_seq = durable.snapshot().expect("snapshot");
    let save_secs = t.elapsed().as_secs_f64();
    let snapshot_bytes = std::fs::metadata(dir.join(SNAPSHOT_FILE))
        .expect("snapshot file")
        .len() as usize;
    let reference = durable.engine().result_relation();
    drop(durable);

    // Snapshot restore: re-bind, load, replay the (empty) tail.
    let snap_path = dir.join(SNAPSHOT_FILE);
    let log_path = dir.join(CHANGELOG_FILE);
    let mut restored = make_engine();
    let t = Instant::now();
    let report = recover::recover(&mut restored, db, Some(&snap_path), &log_path)
        .expect("snapshot restore");
    let restore_secs = t.elapsed().as_secs_f64();
    assert_eq!(report.snapshot_seq, Some(snapshot_seq));
    assert_eq!(report.replayed_batches, 0);
    let restore_rehashes = {
        let stats = restored.stats();
        stats.rehashes + stats.ring_rehashes
    };
    assert_eq!(restore_rehashes, 0, "restore must not rehash ({dataset}/{app})");

    // Log-only replay: base database + the full changelog.
    let mut replayed = make_engine();
    let t = Instant::now();
    let report =
        recover::recover(&mut replayed, db, None, &log_path).expect("changelog replay");
    let replay_secs = t.elapsed().as_secs_f64();
    assert_eq!(report.last_seq, (updates.len() + 1) as u64 - 1);

    // Both recovery paths must land on the reference result.
    for (engine, path) in [(&restored, "restore"), (&replayed, "replay")] {
        let got = engine.result_relation();
        assert_eq!(
            got.len(),
            reference.len(),
            "{dataset}/{app}: {path} diverged from the durable run"
        );
    }

    for (kind, seconds, updates, table_bytes, rehashes) in [
        ("ingest", ingest_secs, total_rows, 0, 0),
        ("replay", replay_secs, total_rows, 0, 0),
        ("save", save_secs, 0, snapshot_bytes, 0),
        ("restore", restore_secs, 0, snapshot_bytes, restore_rehashes),
    ] {
        records.push(BenchRecord {
            dataset: dataset.to_string(),
            app: format!("REC-{kind}-{app}"),
            bulk_size,
            updates,
            seconds,
            delta_entries: 0,
            ring_adds: 0,
            ring_muls: 0,
            probes: 0,
            probe_hits: 0,
            rehashes,
            table_bytes,
        });
    }
    rows.push(vec![
        dataset.to_string(),
        app.to_string(),
        format!("{:.0}", total_rows as f64 / ingest_secs),
        format!("{:.0}", total_rows as f64 / replay_secs),
        format!("{:.1}", snapshot_bytes as f64 / 1024.0),
        format!("{:.2}", save_secs * 1e3),
        format!("{:.2}", restore_secs * 1e3),
    ]);
    let _ = std::fs::remove_dir_all(dir);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_ivm.json".to_string());

    let (retailer_cfg, favorita_cfg, stream) = if quick {
        (
            fivm_data::RetailerConfig::tiny(),
            fivm_data::FavoritaConfig::tiny(),
            fivm_data::StreamConfig {
                bulks: 6,
                bulk_size: 100,
                delete_fraction: 0.2,
                seed: 42,
            },
        )
    } else {
        (
            fivm_data::RetailerConfig::default(),
            fivm_data::FavoritaConfig::default(),
            fivm_data::StreamConfig {
                bulks: 40,
                bulk_size: 1_000,
                delete_fraction: 0.2,
                seed: 42,
            },
        )
    };
    let bulk_size = stream.bulk_size;
    let scratch = std::env::temp_dir().join(format!("fivm_exp_recovery_{}", std::process::id()));

    let mut records = Vec::new();
    let mut rows = Vec::new();

    // Retailer: continuous query — COUNT, COVAR (cofactor ring), MI.
    let w = Workload::retailer(retailer_cfg, stream, true);
    run_recovery(
        w.dataset.name(),
        "COUNT",
        &|| w.count_engine(),
        &w.database,
        &w.updates,
        bulk_size,
        &scratch,
        &mut records,
        &mut rows,
    );
    run_recovery(
        w.dataset.name(),
        "COVAR",
        &|| w.covar_engine(),
        &w.database,
        &w.updates,
        bulk_size,
        &scratch,
        &mut records,
        &mut rows,
    );
    run_recovery(
        w.dataset.name(),
        "MI",
        &|| w.mi_engine(),
        &w.database,
        &w.updates,
        bulk_size,
        &scratch,
        &mut records,
        &mut rows,
    );

    // Favorita: mixed features — COUNT, generalized COVAR, MI.
    let w = Workload::favorita(favorita_cfg, stream);
    run_recovery(
        w.dataset.name(),
        "COUNT",
        &|| w.count_engine(),
        &w.database,
        &w.updates,
        bulk_size,
        &scratch,
        &mut records,
        &mut rows,
    );
    run_recovery(
        w.dataset.name(),
        "COVAR",
        &|| w.gen_covar_engine(),
        &w.database,
        &w.updates,
        bulk_size,
        &scratch,
        &mut records,
        &mut rows,
    );
    run_recovery(
        w.dataset.name(),
        "MI",
        &|| w.mi_engine(),
        &w.database,
        &w.updates,
        bulk_size,
        &scratch,
        &mut records,
        &mut rows,
    );

    println!("\nDurability: logged ingest, replay recovery, snapshot costs");
    print_table(
        &[
            "dataset",
            "app",
            "ingest rows/s",
            "replay rows/s",
            "snapshot KiB",
            "save ms",
            "restore ms",
        ],
        &rows,
    );
    println!("\n(REC-restore rehashes are asserted 0: restore re-buckets from stored hashes.)");

    match append_bench_json(&json_path, "REC-", &records) {
        Ok(()) => println!("merged {} REC-* records into {json_path}", records.len()),
        Err(e) => {
            eprintln!("failed to write {json_path}: {e}");
            std::process::exit(1);
        }
    }
}
