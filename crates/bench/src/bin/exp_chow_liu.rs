//! Experiment E5 — the "Chow-Liu Tree" tab (Figure 2c): the pairwise mutual
//! information matrix over all aggregate attributes and the Chow-Liu tree
//! built from it, refreshed after bulks of updates.

use fivm_bench::{print_table, Workload};
use fivm_core::AggregateLayout;
use fivm_ml::{chow_liu_tree, mi_matrix};

fn run(dataset: &str, workload: &Workload) {
    let layout = AggregateLayout::of(&workload.spec);
    let mut engine = workload.mi_engine();
    engine.load_database(&workload.database).unwrap();

    println!("== E5 ({dataset}): MI matrix and Chow-Liu tree ==\n");
    let report = |engine: &fivm_core::Engine<fivm_ring::GenCofactor>, stage: &str| {
        let payload = engine.result();
        let mi = mi_matrix(&payload, layout.dim());
        println!("-- {stage}: training tuples = {:.0}", payload.count());
        // MI matrix (diagonal = entropy).
        let mut rows = Vec::new();
        for (i, name) in layout.names.iter().enumerate() {
            let mut row = vec![name.clone()];
            row.extend(mi[i].iter().map(|v| format!("{v:.3}")));
            rows.push(row);
        }
        let mut headers: Vec<&str> = vec!["MI"];
        headers.extend(layout.names.iter().map(String::as_str));
        print_table(&headers, &rows);

        // Chow-Liu tree rooted at the label (or attribute 0).
        let root = layout.label.unwrap_or(0);
        let tree = chow_liu_tree(&mi, root).unwrap();
        println!(
            "\nChow-Liu tree (root = {}, total MI = {:.3}):",
            layout.names[root], tree.total_mi
        );
        print!("{}", tree.render(&layout.names));
        println!();
    };

    report(&engine, "initial database");
    for (i, bulk) in workload.updates.iter().enumerate() {
        engine.apply_update(bulk).unwrap();
        if i + 1 == workload.updates.len() {
            report(&engine, &format!("after {} update bulks", i + 1));
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let stream = if quick {
        fivm_data::StreamConfig {
            bulks: 2,
            bulk_size: 100,
            delete_fraction: 0.2,
            seed: 5,
        }
    } else {
        fivm_data::StreamConfig {
            bulks: 5,
            bulk_size: 2_000,
            delete_fraction: 0.2,
            seed: 5,
        }
    };
    let retailer_cfg = if quick {
        fivm_data::RetailerConfig::tiny()
    } else {
        fivm_data::RetailerConfig::default()
    };
    let favorita_cfg = if quick {
        fivm_data::FavoritaConfig::tiny()
    } else {
        fivm_data::FavoritaConfig::default()
    };
    run("Retailer", &Workload::retailer(retailer_cfg, stream, false));
    run("Favorita", &Workload::favorita(favorita_cfg, stream));
}
