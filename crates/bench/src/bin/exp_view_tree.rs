//! Experiment E6 — the "Maintenance Strategy" tab (Figure 2d): the view tree
//! of the Retailer query and the M3-like definition of every view.

use fivm_data::retailer;
use fivm_query::{m3, EliminationHeuristic, PlanStats, VariableOrder, ViewTree};

fn main() {
    let spec = retailer::retailer_query_mixed();
    let tree = retailer::retailer_tree(spec.clone());

    println!("== Retailer view tree (paper-style variable order, Figure 2d) ==\n");
    print!("{}", m3::render_tree_ascii(&tree));
    println!("\nplan statistics: {}\n", PlanStats::of(&tree).summary());

    println!("== M3-like view definitions ==\n");
    let layout = fivm_core::AggregateLayout::of(&spec);
    let ring = format!("RingCofactor<double, {}>", layout.dim());
    print!("{}", m3::render_all_views(&tree, &ring));

    println!("== Graphviz rendering ==\n");
    print!("{}", m3::render_tree_dot(&tree));

    println!("\n== Heuristic variable orders ==\n");
    for (name, h) in [
        ("min-degree", EliminationHeuristic::MinDegree),
        ("min-fill", EliminationHeuristic::MinFill),
    ] {
        let vo = VariableOrder::heuristic(&spec, h).unwrap();
        let t = ViewTree::new(spec.clone(), vo).unwrap();
        println!("{name:<12} {}", PlanStats::of(&t).summary());
    }
}
