//! Experiment E-RING — per-kernel ablation of the columnar/batch delta
//! kernels (`RING-kernel-*` records).
//!
//! Each kernel the columnar path introduced lands with its own paired
//! before/after measurement, so the artifact shows where the speedup
//! comes from rather than one blended number:
//!
//! * **dense accumulate** — materialize-the-product-then-add (the
//!   pre-fusion path, one temporary per op) vs the fused, vectorized
//!   [`fivm_ring::Ring::fma_scaled`] on dense cofactor elements;
//! * **continuous lift** — per-row `LiftFn::fma_apply_encoded` dispatch
//!   vs the batch channel's horizontal sums
//!   (`fma_lift_continuous_sums`);
//! * **categorical lift** — per-row dispatch vs the weighted batch
//!   upsert (`fma_lift_categorical_weighted`);
//! * **batch-fused upsert** — the whole engine on Favorita gen-COVAR and
//!   MI, `KernelMode::Scalar` vs `KernelMode::Columnar` (the headline
//!   steady-state throughput pair).
//!
//! Methodology: every pair runs ≥ 5 *interleaved* rounds (scalar then
//! batch within each round, so machine drift hits both sides equally) and
//! reports the **median** rate per side.  Micro-kernel passes apply every
//! op with `+w` and then `-w`, returning accumulators to baseline so
//! later rounds measure steady state.  Engine pairs get one unmeasured
//! warmup replay first, and their records carry the warm-window work
//! counters — `rehashes` / `ring_rehashes` must be 0 in every record.
//!
//! Records merge into `BENCH_ivm.json` via the family-replace merge
//! (family `RING-kernel`), leaving the other families untouched.  Run
//! with `--quick` for a smoke configuration; `--json PATH` overrides the
//! artifact location.

use fivm_bench::{append_bench_json, format_speedup, measure, BenchRecord, Workload};
use fivm_core::{Engine, EngineStats, KernelMode};
use fivm_ring::lift::{gen_categorical_lift, gen_continuous_lift};
use fivm_ring::{Cofactor, GenCofactor, LiftFn, Ring, RingCtx};
use std::time::Instant;

/// Aggregate-batch dimension of the micro-kernel accumulators (the
/// Favorita query carries 11 aggregate variables; 12 keeps the shape
/// realistic and the triangle sizes even).
const DIM: usize = 12;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_ivm.json".to_string());
    let rounds = if quick { 5 } else { 7 };
    let (favorita_cfg, stream) = if quick {
        (
            fivm_data::FavoritaConfig::tiny(),
            fivm_data::StreamConfig {
                bulks: 4,
                bulk_size: 100,
                delete_fraction: 0.2,
                seed: 1,
            },
        )
    } else {
        (
            fivm_data::FavoritaConfig::default(),
            fivm_data::StreamConfig {
                bulks: 10,
                bulk_size: 1_000,
                delete_fraction: 0.2,
                seed: 1,
            },
        )
    };

    println!("== E-RING: per-kernel columnar/batch ablation, {rounds} interleaved rounds ==\n");
    let workload = Workload::favorita(favorita_cfg, stream);
    let mut records: Vec<BenchRecord> = Vec::new();

    // ------------------------------------------------- micro-kernel inputs
    // Realistic value/weight distributions: one continuous column (the
    // trailing measure) and one categorical column (the leading join key)
    // of every stream row, with the stream's multiplicities as weights.
    let ctx = RingCtx::new();
    let mut cont_evs = Vec::new();
    let mut cat_evs = Vec::new();
    let mut ws = Vec::new();
    let mut scales = Vec::new();
    for bulk in &workload.updates {
        for (row, mult) in &bulk.rows {
            cont_evs.push(ctx.encode_value(&row[row.len() - 1]));
            cat_evs.push(ctx.encode_value(&row[0]));
            ws.push(*mult as f64);
            scales.push(*mult);
        }
    }
    let ws_neg: Vec<f64> = ws.iter().map(|w| -w).collect();
    let ops = cont_evs.len();
    let passes = if quick { 20 } else { 40 };

    // ------------------------------------------------- 1. dense accumulate
    {
        let a = Cofactor::lift(DIM, 1, 3.5).mul(&Cofactor::lift(DIM, 4, -2.0));
        let b = Cofactor::lift(DIM, 0, 1.25).mul(&Cofactor::lift(DIM, 7, 6.0));
        let a_neg = a.neg();
        let mut acc = a.mul(&b);
        let dense_ops = if quick { 20_000 } else { 100_000 };
        let (slow, fast) = run_micro_pair(rounds, |batched| {
            if batched {
                // After: the fused, slice-vectorized accumulate.
                for _ in 0..dense_ops / 2 {
                    acc.fma_scaled(&a, &b, 1);
                    acc.fma_scaled(&a, &b, -1);
                }
            } else {
                // Before: materialize the product, then add it — one
                // dense temporary per op (the pre-fusion accumulate).
                for _ in 0..dense_ops / 2 {
                    let p = a.mul(&b);
                    acc.add_assign(&p);
                    let p = a_neg.mul(&b);
                    acc.add_assign(&p);
                }
            }
            dense_ops
        });
        report_micro(&mut records, &workload, "dense", "materialized", "fused", slow, fast);
    }

    // ------------------------------------------------ 2. continuous lift
    {
        let lift: LiftFn<GenCofactor> = gen_continuous_lift(DIM, 0, "measure");
        let acc = GenCofactor::scalar(1.0);
        let mut slot = GenCofactor::lift_continuous(DIM, 0, 1.0)
            .mul(&GenCofactor::lift_continuous(DIM, 3, -2.0));
        let batch = lift.fma_batch().expect("continuous lift carries a batch channel").clone();
        let (slow, fast) = run_micro_pair(rounds, |batched| {
            for _ in 0..passes {
                if batched {
                    batch(&cont_evs, &ws, &mut slot);
                    batch(&cont_evs, &ws_neg, &mut slot);
                } else {
                    for (&ev, &s) in cont_evs.iter().zip(&scales) {
                        lift.fma_apply_encoded(ev, |_| unreachable!(), &acc, s, &mut slot);
                    }
                    for (&ev, &s) in cont_evs.iter().zip(&scales) {
                        lift.fma_apply_encoded(ev, |_| unreachable!(), &acc, -s, &mut slot);
                    }
                }
            }
            2 * ops * passes
        });
        report_micro(&mut records, &workload, "cont", "scalar", "batch", slow, fast);
    }

    // ------------------------------------------------ 3. categorical lift
    {
        let lift: LiftFn<GenCofactor> = gen_categorical_lift(DIM, 2, 2, "store", &ctx);
        let acc = GenCofactor::scalar(1.0);
        let mut slot = GenCofactor::zero();
        let batch = lift.fma_batch().expect("categorical lift carries a batch channel").clone();
        // Warm the interior tables with every key the stream touches.
        batch(&cat_evs, &ws, &mut slot);
        batch(&cat_evs, &ws_neg, &mut slot);
        let (slow, fast) = run_micro_pair(rounds, |batched| {
            for _ in 0..passes {
                if batched {
                    batch(&cat_evs, &ws, &mut slot);
                    batch(&cat_evs, &ws_neg, &mut slot);
                } else {
                    for (&ev, &s) in cat_evs.iter().zip(&scales) {
                        lift.fma_apply_encoded(ev, |_| unreachable!(), &acc, s, &mut slot);
                    }
                    for (&ev, &s) in cat_evs.iter().zip(&scales) {
                        lift.fma_apply_encoded(ev, |_| unreachable!(), &acc, -s, &mut slot);
                    }
                }
            }
            2 * ops * passes
        });
        report_micro(&mut records, &workload, "cat", "scalar", "batch", slow, fast);
    }

    // -------------------------------------------- 4. batch-fused upsert
    let covar_ratio = run_engine_paired(
        workload.gen_covar_engine(),
        workload.gen_covar_engine(),
        &workload,
        rounds,
        "upsert-covar",
        &mut records,
    );
    let mi_ratio = run_engine_paired(
        workload.mi_engine(),
        workload.mi_engine(),
        &workload,
        rounds,
        "upsert-mi",
        &mut records,
    );

    match append_bench_json(&json_path, "RING-kernel", &records) {
        Ok(()) => println!("\nmerged {} RING-kernel records into {json_path}", records.len()),
        Err(e) => eprintln!("\nfailed to update {json_path}: {e}"),
    }
    println!(
        "\n(acceptance: Favorita COVAR or MI steady-state columnar/scalar ratio ≥ 1.3×; \
         measured COVAR {:.2}x, MI {:.2}x)",
        covar_ratio, mi_ratio
    );
}

/// Runs `rounds` interleaved rounds of a two-sided micro-kernel pass
/// (`pass(false)` = the scalar/before side, `pass(true)` = the batch
/// side; each call returns the op count it performed) and yields the
/// median ops/second of each side.  One closure owns both sides so they
/// can share mutable accumulator state.
fn run_micro_pair(
    rounds: usize,
    mut pass: impl FnMut(bool) -> usize,
) -> ((f64, usize), (f64, usize)) {
    // One unmeasured warmup of each side.
    let mut slow_ops = pass(false);
    let mut fast_ops = pass(true);
    let mut slow_rates = Vec::with_capacity(rounds);
    let mut fast_rates = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t = Instant::now();
        slow_ops = pass(false);
        slow_rates.push(slow_ops as f64 / t.elapsed().as_secs_f64());
        let t = Instant::now();
        fast_ops = pass(true);
        fast_rates.push(fast_ops as f64 / t.elapsed().as_secs_f64());
    }
    ((median(&mut slow_rates), slow_ops), (median(&mut fast_rates), fast_ops))
}

/// Prints one micro-kernel pair and pushes its two records.
fn report_micro(
    records: &mut Vec<BenchRecord>,
    workload: &Workload,
    kernel: &str,
    before: &str,
    after: &str,
    (slow_rate, slow_ops): (f64, usize),
    (fast_rate, fast_ops): (f64, usize),
) {
    println!(
        "{kernel}: {before} {:.2}M ops/s, {after} {:.2}M ops/s ({} from the batch kernel)",
        slow_rate / 1e6,
        fast_rate / 1e6,
        format_speedup(fast_rate / slow_rate),
    );
    for (suffix, rate, ops) in [(before, slow_rate, slow_ops), (after, fast_rate, fast_ops)] {
        records.push(BenchRecord {
            dataset: workload.dataset.name().to_string(),
            app: format!("RING-kernel-{kernel}-{suffix}"),
            bulk_size: 0,
            updates: ops,
            seconds: ops as f64 / rate,
            delta_entries: 0,
            ring_adds: ops,
            ring_muls: ops,
            probes: 0,
            probe_hits: 0,
            rehashes: 0,
            table_bytes: 0,
        });
    }
}

/// Paired scalar-vs-columnar engine runs: both engines are loaded once and
/// given one unmeasured warmup replay (fixing the key set), then the
/// stream is replayed `rounds` times on each, alternating within every
/// round.  Emits `RING-kernel-<app>-scalar` / `-columnar` records with
/// median throughput and last-round warm-window counters, and returns the
/// columnar/scalar median ratio.
fn run_engine_paired<R: Ring>(
    mut scalar: Engine<R>,
    mut columnar: Engine<R>,
    workload: &Workload,
    rounds: usize,
    app: &str,
    records: &mut Vec<BenchRecord>,
) -> f64 {
    scalar.set_kernel_mode(KernelMode::Scalar);
    columnar.set_kernel_mode(KernelMode::Columnar);
    scalar.load_database(&workload.database).expect("load");
    columnar.load_database(&workload.database).expect("load");
    for b in &workload.updates {
        scalar.apply_update(b).expect("warmup");
        columnar.apply_update(b).expect("warmup");
    }

    let mut scalar_rates = Vec::with_capacity(rounds);
    let mut columnar_rates = Vec::with_capacity(rounds);
    let mut scalar_stats = EngineStats::default();
    let mut columnar_stats = EngineStats::default();
    let mut updates = 0usize;
    for _ in 0..rounds {
        let before = scalar.stats();
        let t = measure(&workload.updates, |b| {
            scalar.apply_update(b).unwrap();
        });
        scalar_stats = scalar.stats().delta_since(&before);
        scalar_rates.push(t.updates_per_second());

        let before = columnar.stats();
        let t = measure(&workload.updates, |b| {
            columnar.apply_update(b).unwrap();
        });
        columnar_stats = columnar.stats().delta_since(&before);
        columnar_rates.push(t.updates_per_second());
        updates = t.updates;
    }

    let med_s = median(&mut scalar_rates.clone());
    let med_c = median(&mut columnar_rates.clone());
    println!(
        "{app}: scalar median {:.0} rows/s, columnar median {:.0} rows/s \
         ({} from the columnar kernel; per-round ratios {})",
        med_s,
        med_c,
        format_speedup(med_c / med_s),
        columnar_rates
            .iter()
            .zip(&scalar_rates)
            .map(|(c, s)| format!("{:.2}", c / s))
            .collect::<Vec<_>>()
            .join(" "),
    );
    for (suffix, rate, stats) in [
        ("scalar", med_s, scalar_stats),
        ("columnar", med_c, columnar_stats),
    ] {
        records.push(BenchRecord {
            dataset: workload.dataset.name().to_string(),
            app: format!("RING-kernel-{app}-{suffix}"),
            bulk_size: workload.updates.first().map(|u| u.len()).unwrap_or(0),
            updates,
            seconds: updates as f64 / rate,
            delta_entries: stats.delta_entries,
            ring_adds: stats.ring_adds,
            ring_muls: stats.ring_muls,
            probes: stats.probes,
            probe_hits: stats.probe_hits,
            rehashes: stats.rehashes,
            table_bytes: stats.table_bytes,
        });
    }
    med_c / med_s
}

/// The median of a sample (sorts in place).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    xs[xs.len() / 2]
}
