//! Experiment E2 — update throughput and speedups over the baselines.
//!
//! Reproduces the shape of the paper's §1 claims: F-IVM sustains on the
//! order of 10K updates/second per thread for batches of aggregates over
//! joins of five relations, and is orders of magnitude faster than
//! maintaining the join itself (DBToaster-style) or recomputing from
//! scratch.  Absolute numbers depend on the machine; the ordering and rough
//! ratios are what this experiment checks.
//!
//! Also emits `BENCH_ivm.json` — the machine-readable perf baseline
//! (rows/second, delta entries and ring-operation counts per F-IVM
//! workload) that later perf PRs are measured against.
//!
//! Run with `--quick` for a fast smoke-test configuration; `--json PATH`
//! overrides the artifact location; `--shards N` adds paired
//! single-vs-N-shard runs (`PAR-*` records).

use fivm_baselines::{JoinMaintenance, NaiveReevaluation, UnsharedCovar};
use fivm_bench::{
    format_speedup, measure, print_table, write_bench_json, BenchRecord, MemAblation,
    ProbeAblation, RingAblation, Throughput, Workload,
};
use fivm_core::apps::{count_lifts, covar_lifts, gen_covar_lifts};
use fivm_core::{Engine, EngineStats};
use fivm_relation::Update;
use fivm_ring::{LiftFn, Ring, RingCtx};
use fivm_shard::ShardedEngine;

/// Replays the update stream through an F-IVM engine, returning wall-clock
/// timing and the engine's work counters for the **warm window** only: one
/// unmeasured warmup replay fixes the key set (the stream revisits its own
/// keys), then the measured replay runs in steady state and its counter
/// deltas reflect the pinned invariants — in particular `rehashes` /
/// `ring_rehashes` stay 0 instead of carrying warmup table growth into the
/// artifact.  `table_bytes` is a gauge and reports the absolute resident
/// footprint at the end of the run.
///
/// Only the F-IVM engines get this warmup; the baselines are still
/// measured cold (warming the naive re-evaluator is prohibitively slow),
/// so the printed "slowdown vs F-IVM" columns compare steady-state F-IVM
/// against cold baselines and overstate the gap by the baselines' warmup
/// share — they are order-of-magnitude context, not paired measurements
/// (stated again next to the printed table).
fn run_fivm<R: Ring>(engine: &mut Engine<R>, updates: &[Update]) -> (Throughput, EngineStats) {
    for b in updates {
        engine.apply_update(b).unwrap();
    }
    let before = engine.stats();
    let t = measure(updates, |b| {
        engine.apply_update(b).unwrap();
    });
    (t, engine.stats().delta_since(&before))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_ivm.json".to_string());
    let shards = args
        .iter()
        .position(|a| a == "--shards")
        .map(|i| {
            args.get(i + 1)
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    eprintln!("--shards takes a positive shard count");
                    std::process::exit(2);
                })
        })
        .unwrap_or(0);
    let (retailer_cfg, favorita_cfg, stream) = if quick {
        (
            fivm_data::RetailerConfig::tiny(),
            fivm_data::FavoritaConfig::tiny(),
            fivm_data::StreamConfig {
                bulks: 4,
                bulk_size: 100,
                delete_fraction: 0.2,
                seed: 1,
            },
        )
    } else {
        (
            fivm_data::RetailerConfig::default(),
            fivm_data::FavoritaConfig::default(),
            fivm_data::StreamConfig {
                bulks: 10,
                bulk_size: 1_000,
                delete_fraction: 0.2,
                seed: 1,
            },
        )
    };

    println!(
        "== E2: update throughput (updates/second), bulk size {} ==\n",
        stream.bulk_size
    );
    let mut rows = Vec::new();
    let mut records: Vec<BenchRecord> = Vec::new();

    for dataset in ["Retailer", "Favorita"] {
        let workload = match dataset {
            "Retailer" => Workload::retailer(retailer_cfg.clone(), stream, true),
            _ => Workload::favorita(favorita_cfg.clone(), stream),
        };
        println!(
            "{dataset}: |DB| = {} rows, stream = {} updates in {} bulks",
            workload.database.total_rows(),
            workload.total_updates(),
            workload.updates.len()
        );

        // --- F-IVM: COUNT, COVAR (or generalized COVAR), MI ----------------
        let mut count = workload.count_engine();
        count.load_database(&workload.database).unwrap();
        let (t_count, s_count) = run_fivm(&mut count, &workload.updates);
        record(&mut records, dataset, "COUNT", stream.bulk_size, t_count, s_count);
        push_row(&mut rows, dataset, "F-IVM", "COUNT", t_count, Some(s_count), None);

        let (fivm_covar, s_covar) = if dataset == "Retailer" {
            let mut covar = workload.covar_engine();
            covar.load_database(&workload.database).unwrap();
            run_fivm(&mut covar, &workload.updates)
        } else {
            let mut covar = workload.gen_covar_engine();
            covar.load_database(&workload.database).unwrap();
            run_fivm(&mut covar, &workload.updates)
        };
        record(&mut records, dataset, "COVAR", stream.bulk_size, fivm_covar, s_covar);
        push_row(&mut rows, dataset, "F-IVM", "COVAR", fivm_covar, Some(s_covar), None);
        if dataset == "Favorita" {
            // The co-resident regime's limiting number: the resident bytes
            // of the generalized-COVAR engine (views incl. ring-payload
            // interiors) after the full replay — the `MEM-engine` record.
            println!(
                "  gen-covar engine footprint: {:.2} MiB of view/ring tables",
                s_covar.table_bytes as f64 / (1024.0 * 1024.0)
            );
            records.push(BenchRecord {
                dataset: dataset.to_string(),
                app: "MEM-engine-covar".to_string(),
                bulk_size: stream.bulk_size,
                updates: fivm_covar.updates,
                // Memory-only record: untimed by convention (the timed
                // run is the COVAR record above).
                seconds: 0.0,
                delta_entries: 0,
                ring_adds: 0,
                ring_muls: 0,
                probes: 0,
                probe_hits: 0,
                rehashes: 0,
                table_bytes: s_covar.table_bytes,
            });
        }

        let mut mi = workload.mi_engine();
        mi.load_database(&workload.database).unwrap();
        let (t_mi, s_mi) = run_fivm(&mut mi, &workload.updates);
        record(&mut records, dataset, "MI", stream.bulk_size, t_mi, s_mi);
        push_row(&mut rows, dataset, "F-IVM", "MI", t_mi, Some(s_mi), None);

        // --- Baseline: first-order join maintenance (COVAR aggregate) ------
        if dataset == "Retailer" {
            let lifts = covar_lifts(&workload.spec).expect("continuous covar lifts");
            let mut jm = JoinMaintenance::new(workload.spec.clone(), lifts).unwrap();
            jm.load_database(&workload.database).unwrap();
            let t = measure(&workload.updates, |b| {
                jm.apply_update(b).unwrap();
            });
            println!(
                "  join-maintenance materialized join size: {} tuples",
                jm.join_size()
            );
            push_row(&mut rows, dataset, "join-maintenance", "COVAR", t, None, Some(fivm_covar));
        } else {
            // Favorita: the join-maintenance baseline maintains the join with
            // a count aggregate on top (its cost is dominated by the join).
            let mut jm = JoinMaintenance::new(
                workload.spec.clone(),
                vec![LiftFn::<i64>::identity(); workload.spec.num_vars()],
            )
            .unwrap();
            jm.load_database(&workload.database).unwrap();
            let t = measure(&workload.updates, |b| {
                jm.apply_update(b).unwrap();
            });
            println!(
                "  join-maintenance materialized join size: {} tuples",
                jm.join_size()
            );
            push_row(
                &mut rows,
                dataset,
                "join-maintenance",
                "COUNT (join kept)",
                t,
                None,
                Some(t_count),
            );
        }

        // --- Ablation: encoded (hash-once) vs boxed probe keys --------------
        {
            let ablation = ProbeAblation::from_workload(&workload);
            let passes = if quick { 5 } else { 20 };
            let boxed = ablation.measure(false, passes);
            let encoded = ablation.measure(true, passes);
            println!(
                "  probe ablation ({} keys, {} probes/pass): boxed {:.2}M probes/s, \
                 encoded {:.2}M probes/s ({} from dictionary encoding)",
                ablation.len(),
                ablation.num_probes(),
                boxed / 1e6,
                encoded / 1e6,
                format_speedup(encoded / boxed),
            );
            let probes = ablation.num_probes() * passes;
            for (app, rate) in [("PROBE-boxed", boxed), ("PROBE-encoded", encoded)] {
                records.push(BenchRecord {
                    dataset: dataset.to_string(),
                    app: app.to_string(),
                    bulk_size: stream.bulk_size,
                    updates: probes,
                    seconds: probes as f64 / rate,
                    delta_entries: 0,
                    ring_adds: 0,
                    ring_muls: 0,
                    probes,
                    probe_hits: 0,
                    rehashes: 0,
                    table_bytes: 0,
                });
            }
        }

        // --- Ablation: encoded vs boxed RING-interior keys ------------------
        {
            let mut ablation = RingAblation::from_workload(&workload, 256);
            let passes = if quick { 3 } else { 10 };
            let boxed = ablation.measure(false, passes);
            let encoded = ablation.measure(true, passes);
            println!(
                "  ring ablation ({} fma ops/pass): boxed {:.2}M ops/s, \
                 encoded {:.2}M ops/s ({} from encoded ring keys)",
                ablation.num_ops(),
                boxed / 1e6,
                encoded / 1e6,
                format_speedup(encoded / boxed),
            );
            let ops = ablation.num_ops() * passes;
            for (app, rate) in [("RING-boxed", boxed), ("RING-encoded", encoded)] {
                records.push(BenchRecord {
                    dataset: dataset.to_string(),
                    app: app.to_string(),
                    bulk_size: stream.bulk_size,
                    updates: ops,
                    seconds: ops as f64 / rate,
                    delta_entries: 0,
                    ring_adds: ops,
                    ring_muls: ops,
                    probes: 0,
                    probe_hits: 0,
                    rehashes: 0,
                    table_bytes: 0,
                });
            }
        }

        // --- Ablation: ring-table memory (MEM-* records) --------------------
        {
            let mem = MemAblation::from_workload(&workload);
            let entries = mem.entries();
            let (new, option, boxed) = (mem.new_bytes(), mem.option_bytes(), mem.boxed_bytes());
            let per = |b: usize| b as f64 / entries as f64;
            println!(
                "  mem ablation ({entries} ring-table entries): boxed {:.1} B/entry, \
                 option-slot layout {:.1} B/entry, new layout {:.1} B/entry \
                 ({:.1}% reduction vs option slots)",
                per(boxed),
                per(option),
                per(new),
                (1.0 - per(new) / per(option)) * 100.0,
            );
            for (app, bytes) in [
                ("MEM-ring-boxed", boxed),
                ("MEM-ring-option", option),
                ("MEM-ring-new", new),
            ] {
                records.push(BenchRecord {
                    dataset: dataset.to_string(),
                    app: app.to_string(),
                    bulk_size: stream.bulk_size,
                    updates: entries,
                    // Memory-only record: untimed by convention.
                    seconds: 0.0,
                    delta_entries: 0,
                    ring_adds: 0,
                    ring_muls: 0,
                    probes: 0,
                    probe_hits: 0,
                    rehashes: 0,
                    table_bytes: bytes,
                });
            }
        }

        // --- Baseline: naive re-evaluation after every bulk ----------------
        if dataset == "Retailer" {
            let spec = fivm_data::retailer::retailer_query_continuous();
            let mut naive =
                NaiveReevaluation::new(spec.clone(), covar_lifts(&spec).unwrap()).unwrap();
            naive.load_database(&workload.database).unwrap();
            // Re-evaluation is slow; replay only the first bulks.
            let subset = &workload.updates[..workload.updates.len().min(3)];
            let t = measure(subset, |b| {
                naive.apply_update(b).unwrap();
                std::hint::black_box(naive.result());
            });
            push_row(&mut rows, dataset, "naive re-evaluation", "COVAR", t, None, Some(fivm_covar));

            // --- Ablation: unshared per-aggregate maintenance --------------
            let tree = fivm_data::retailer::retailer_tree(spec);
            let mut unshared = UnsharedCovar::new(tree).unwrap();
            unshared.load_database(&workload.database).unwrap();
            let t = measure(subset, |b| {
                unshared.apply_update(b).unwrap();
            });
            push_row(&mut rows, dataset, "unshared aggregates", "COVAR", t, None, Some(fivm_covar));
        }
        println!();
    }

    // --- Paired single-vs-sharded runs (PAR-* records) ----------------------
    if shards > 0 {
        let rounds = if quick { 3 } else { 7 };
        println!(
            "== PAR: paired 1-vs-{shards}-shard throughput, {rounds} interleaved rounds ==\n"
        );
        let workload = Workload::retailer(retailer_cfg.clone(), stream, true);
        let spec = workload.spec.clone();
        run_paired(
            &workload,
            move |_| count_lifts(&spec),
            shards,
            rounds,
            "COUNT",
            stream.bulk_size,
            &mut records,
        );
        let spec = workload.spec.clone();
        run_paired(
            &workload,
            move |_| covar_lifts(&spec).expect("continuous covar lifts"),
            shards,
            rounds,
            "COVAR",
            stream.bulk_size,
            &mut records,
        );
        let workload = Workload::favorita(favorita_cfg.clone(), stream);
        let spec = workload.spec.clone();
        run_paired(
            &workload,
            move |ctx| gen_covar_lifts(&spec, ctx),
            shards,
            rounds,
            "COVAR",
            stream.bulk_size,
            &mut records,
        );
        println!();
    }

    print_table(
        &[
            "dataset",
            "system",
            "application",
            "updates/s",
            "delta entries",
            "ring adds",
            "ring muls",
            "probes",
            "probe hits",
            "slowdown vs F-IVM",
        ],
        &rows,
    );

    match write_bench_json(&json_path, &records) {
        Ok(()) => println!("\nwrote {json_path} ({} records)", records.len()),
        Err(e) => eprintln!("\nfailed to write {json_path}: {e}"),
    }
    println!("\n(paper's claim: F-IVM averages ~10K updates/s and beats DBToaster-style");
    println!(" join maintenance by orders of magnitude on these workloads;");
    println!(" F-IVM rows are warm-window/steady-state, baselines are measured cold —");
    println!(" the slowdown columns are order-of-magnitude context, not paired runs)");
}

/// Paired single-vs-sharded measurement: both engines are built and loaded
/// once, then the update stream is replayed `rounds` times on each,
/// alternating single/sharded within every round so machine drift hits
/// both sides equally (the noisy-box methodology from ROADMAP.md).
/// Replaying the same stream keeps the key set fixed after round one, so
/// later rounds measure true steady state.  Emits `PAR-<app>-x1` and
/// `PAR-<app>-x<N>` records with median throughput and last-round work
/// counters.
fn run_paired<R: Ring>(
    workload: &Workload,
    lifts: impl Fn(&RingCtx) -> Vec<LiftFn<R>> + Clone,
    shards: usize,
    rounds: usize,
    app: &str,
    bulk_size: usize,
    records: &mut Vec<BenchRecord>,
) {
    let dataset = workload.dataset.name();
    // Lifts are built per engine against that engine's own context (the
    // ring-key contract: lifts and engine share one dictionary).
    let single_ctx = RingCtx::new();
    let mut single =
        Engine::new_with_ctx(workload.tree.clone(), lifts(&single_ctx), single_ctx)
            .expect("single engine");
    single.load_database(&workload.database).expect("load");
    let factory = lifts.clone();
    let mut sharded =
        ShardedEngine::with_lift_factory(workload.tree.clone(), move |ctx| Ok(factory(ctx)), shards)
            .expect("sharded engine");
    sharded.load_database(&workload.database).expect("load");

    let mut single_rates = Vec::with_capacity(rounds);
    let mut sharded_rates = Vec::with_capacity(rounds);
    let mut single_stats = EngineStats::default();
    let mut sharded_stats = EngineStats::default();
    let mut updates = 0usize;
    for _ in 0..rounds {
        let before = single.stats();
        let t = measure(&workload.updates, |b| {
            single.apply_update(b).unwrap();
        });
        single_stats = single.stats().delta_since(&before);
        single_rates.push(t.updates_per_second());

        let before = sharded.stats().expect("shard stats");
        let ts = measure(&workload.updates, |b| {
            sharded.apply_update(b).unwrap();
        });
        // `delta_since` carries the byte gauge through: the sharded stats
        // report the resident footprint summed across all shards.
        sharded_stats = sharded.stats().expect("shard stats").delta_since(&before);
        sharded_rates.push(ts.updates_per_second());
        updates = t.updates;
    }

    let med1 = median(&mut single_rates.clone());
    let medn = median(&mut sharded_rates.clone());
    println!(
        "{dataset} {app}: single median {:.0} rows/s, {shards}-shard median {:.0} rows/s \
         ({} vs single; per-round ratios {})",
        med1,
        medn,
        format_speedup(medn / med1),
        sharded_rates
            .iter()
            .zip(&single_rates)
            .map(|(n, s)| format!("{:.2}", n / s))
            .collect::<Vec<_>>()
            .join(" "),
    );
    for (suffix, rate, stats) in [
        ("x1".to_string(), med1, single_stats),
        (format!("x{shards}"), medn, sharded_stats),
    ] {
        records.push(BenchRecord {
            dataset: dataset.to_string(),
            app: format!("PAR-{app}-{suffix}"),
            bulk_size,
            updates,
            seconds: updates as f64 / rate,
            delta_entries: stats.delta_entries,
            ring_adds: stats.ring_adds,
            ring_muls: stats.ring_muls,
            probes: stats.probes,
            probe_hits: stats.probe_hits,
            rehashes: stats.rehashes,
            table_bytes: stats.table_bytes,
        });
    }
}

/// The median of a sample (sorts in place).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("throughputs are finite"));
    xs[xs.len() / 2]
}

/// Appends one measured F-IVM configuration to the JSON record list.
fn record(
    records: &mut Vec<BenchRecord>,
    dataset: &str,
    app: &str,
    bulk_size: usize,
    t: Throughput,
    stats: EngineStats,
) {
    records.push(BenchRecord {
        dataset: dataset.to_string(),
        app: app.to_string(),
        bulk_size,
        updates: t.updates,
        seconds: t.seconds,
        delta_entries: stats.delta_entries,
        ring_adds: stats.ring_adds,
        ring_muls: stats.ring_muls,
        probes: stats.probes,
        probe_hits: stats.probe_hits,
        rehashes: stats.rehashes,
        table_bytes: stats.table_bytes,
    });
}

#[allow(clippy::too_many_arguments)]
fn push_row(
    rows: &mut Vec<Vec<String>>,
    dataset: &str,
    system: &str,
    app: &str,
    t: Throughput,
    stats: Option<EngineStats>,
    fivm_reference: Option<Throughput>,
) {
    let slowdown = fivm_reference
        .map(|r| format_speedup(r.updates_per_second() / t.updates_per_second()))
        .unwrap_or_else(|| "-".to_string());
    let (de, ra, rm, pr, ph) = stats
        .map(|s| {
            (
                s.delta_entries.to_string(),
                s.ring_adds.to_string(),
                s.ring_muls.to_string(),
                s.probes.to_string(),
                s.probe_hits.to_string(),
            )
        })
        .unwrap_or_else(|| ("-".into(), "-".into(), "-".into(), "-".into(), "-".into()));
    rows.push(vec![
        dataset.to_string(),
        system.to_string(),
        app.to_string(),
        format!("{:.0}", t.updates_per_second()),
        de,
        ra,
        rm,
        pr,
        ph,
        slowdown,
    ]);
}
