//! Experiment E2 — update throughput and speedups over the baselines.
//!
//! Reproduces the shape of the paper's §1 claims: F-IVM sustains on the
//! order of 10K updates/second per thread for batches of aggregates over
//! joins of five relations, and is orders of magnitude faster than
//! maintaining the join itself (DBToaster-style) or recomputing from
//! scratch.  Absolute numbers depend on the machine; the ordering and rough
//! ratios are what this experiment checks.
//!
//! Run with `--quick` for a fast smoke-test configuration.

use fivm_baselines::{JoinMaintenance, NaiveReevaluation, UnsharedCovar};
use fivm_bench::{format_speedup, measure, print_table, Throughput, Workload};
use fivm_core::AggregateLayout;
use fivm_ring::{Cofactor, LiftFn};

fn covar_lifts(spec: &fivm_query::QuerySpec) -> Vec<LiftFn<Cofactor>> {
    let layout = AggregateLayout::of(spec);
    let mut lifts = vec![LiftFn::identity(); spec.num_vars()];
    for (idx, &v) in layout.vars.iter().enumerate() {
        lifts[v] = fivm_ring::lift::cofactor_continuous_lift(layout.dim(), idx, &layout.names[idx]);
    }
    lifts
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (retailer_cfg, favorita_cfg, stream) = if quick {
        (
            fivm_data::RetailerConfig::tiny(),
            fivm_data::FavoritaConfig::tiny(),
            fivm_data::StreamConfig {
                bulks: 4,
                bulk_size: 100,
                delete_fraction: 0.2,
                seed: 1,
            },
        )
    } else {
        (
            fivm_data::RetailerConfig::default(),
            fivm_data::FavoritaConfig::default(),
            fivm_data::StreamConfig {
                bulks: 10,
                bulk_size: 1_000,
                delete_fraction: 0.2,
                seed: 1,
            },
        )
    };

    println!("== E2: update throughput (updates/second), bulk size {} ==\n", stream.bulk_size);
    let mut rows = Vec::new();

    for dataset in ["Retailer", "Favorita"] {
        let workload = match dataset {
            "Retailer" => Workload::retailer(retailer_cfg.clone(), stream, true),
            _ => Workload::favorita(favorita_cfg.clone(), stream),
        };
        println!(
            "{dataset}: |DB| = {} rows, stream = {} updates in {} bulks",
            workload.database.total_rows(),
            workload.total_updates(),
            workload.updates.len()
        );

        // --- F-IVM: COUNT, COVAR (or generalized COVAR), MI ----------------
        let mut count = workload.count_engine();
        count.load_database(&workload.database).unwrap();
        let t_count = measure(&workload.updates, |b| {
            count.apply_update(b).unwrap();
        });
        push_row(&mut rows, dataset, "F-IVM", "COUNT", t_count, None);

        let fivm_covar: Throughput;
        if dataset == "Retailer" {
            let mut covar = workload.covar_engine();
            covar.load_database(&workload.database).unwrap();
            fivm_covar = measure(&workload.updates, |b| {
                covar.apply_update(b).unwrap();
            });
        } else {
            let mut covar = workload.gen_covar_engine();
            covar.load_database(&workload.database).unwrap();
            fivm_covar = measure(&workload.updates, |b| {
                covar.apply_update(b).unwrap();
            });
        }
        push_row(&mut rows, dataset, "F-IVM", "COVAR", fivm_covar, None);

        let mut mi = workload.mi_engine();
        mi.load_database(&workload.database).unwrap();
        let t_mi = measure(&workload.updates, |b| {
            mi.apply_update(b).unwrap();
        });
        push_row(&mut rows, dataset, "F-IVM", "MI", t_mi, None);

        // --- Baseline: first-order join maintenance (COVAR aggregate) ------
        let lifts = if dataset == "Retailer" {
            covar_lifts(&workload.spec)
        } else {
            // Favorita's mixed query: reuse continuous lifts for the
            // continuous attributes only (join maintenance cost is dominated
            // by the join either way).
            covar_lifts(&fivm_data::retailer::retailer_query_continuous())
        };
        let join_covar = if dataset == "Retailer" {
            let mut jm = JoinMaintenance::new(workload.spec.clone(), lifts).unwrap();
            jm.load_database(&workload.database).unwrap();
            let t = measure(&workload.updates, |b| {
                jm.apply_update(b).unwrap();
            });
            println!("  join-maintenance materialized join size: {} tuples", jm.join_size());
            Some(t)
        } else {
            None
        };
        if let Some(t) = join_covar {
            push_row(&mut rows, dataset, "join-maintenance", "COVAR", t, Some(fivm_covar));
        } else {
            // Favorita: the join-maintenance baseline maintains the join with
            // a count aggregate on top (its cost is dominated by the join).
            let mut jm = JoinMaintenance::new(
                workload.spec.clone(),
                vec![LiftFn::<i64>::identity(); workload.spec.num_vars()],
            )
            .unwrap();
            jm.load_database(&workload.database).unwrap();
            let t = measure(&workload.updates, |b| {
                jm.apply_update(b).unwrap();
            });
            println!("  join-maintenance materialized join size: {} tuples", jm.join_size());
            push_row(&mut rows, dataset, "join-maintenance", "COUNT (join kept)", t, Some(t_count));
        }

        // --- Baseline: naive re-evaluation after every bulk ----------------
        if dataset == "Retailer" {
            let spec = fivm_data::retailer::retailer_query_continuous();
            let mut naive = NaiveReevaluation::new(spec.clone(), covar_lifts(&spec)).unwrap();
            naive.load_database(&workload.database).unwrap();
            // Re-evaluation is slow; replay only the first bulks.
            let subset = &workload.updates[..workload.updates.len().min(3)];
            let t = measure(subset, |b| {
                naive.apply_update(b).unwrap();
                std::hint::black_box(naive.result());
            });
            push_row(&mut rows, dataset, "naive re-evaluation", "COVAR", t, Some(fivm_covar));

            // --- Ablation: unshared per-aggregate maintenance --------------
            let tree = fivm_data::retailer::retailer_tree(spec);
            let mut unshared = UnsharedCovar::new(tree).unwrap();
            unshared.load_database(&workload.database).unwrap();
            let t = measure(subset, |b| {
                unshared.apply_update(b).unwrap();
            });
            push_row(&mut rows, dataset, "unshared aggregates", "COVAR", t, Some(fivm_covar));
        }
        println!();
    }

    print_table(
        &["dataset", "system", "application", "updates/s", "slowdown vs F-IVM"],
        &rows,
    );
    println!("\n(paper's claim: F-IVM averages ~10K updates/s and beats DBToaster-style");
    println!(" join maintenance by orders of magnitude on these workloads)");
}

fn push_row(
    rows: &mut Vec<Vec<String>>,
    dataset: &str,
    system: &str,
    app: &str,
    t: Throughput,
    fivm_reference: Option<Throughput>,
) {
    let slowdown = fivm_reference
        .map(|r| format_speedup(r.updates_per_second() / t.updates_per_second()))
        .unwrap_or_else(|| "-".to_string());
    rows.push(vec![
        dataset.to_string(),
        system.to_string(),
        app.to_string(),
        format!("{:.0}", t.updates_per_second()),
        slowdown,
    ]);
}
