//! Experiment E-DAG — multi-query sharing: one shared maintenance DAG
//! versus K independent single-tree engines.
//!
//! The fleet is K COVAR queries over the Retailer continuous schema that
//! differ **only** in their group-by (subsets of the join keys `locn`,
//! `dateid`, `zip`, `ksn`), so their view trees share the deep
//! fact-table prefix and diverge near the root — the regime the
//! multi-query DAG (`fivm_dag`) is built for.  For K ∈ {1, 4, 16} the
//! experiment replays an identical steady-state churn window through
//!
//! * the shared [`DagEngine`], which runs **one** propagation pass per
//!   bulk and fans out at the divergence points, and
//! * K independent [`Engine`]s, each running its own full pass,
//!
//! in interleaved paired rounds, reporting the **median** of ≥5 rounds
//! per side.  Records merge into `BENCH_ivm.json` as the `DAG-*` family
//! (`DAG-K<k>-shared` / `DAG-K<k>-independent`); `updates` counts
//! *aggregate query-rows* (caller rows × K — each input row maintains K
//! sinks on both sides) so `rows_per_sec` is directly comparable.
//!
//! The measured window is warm (post-load, post-warmup `delta_since`
//! snapshot) and algebraically a no-op per round (each bulk is applied
//! and then reverted), so both sides are asserted to run **rehash-free**
//! — the steady-state hash-once contract — and every query's sink is
//! cross-checked bit-for-bit against its standalone engine on the
//! quantized stream before timing starts.
//!
//! Run with `--quick` for a smoke-test configuration; `--json PATH`
//! overrides the artifact location.

use fivm_bench::{append_bench_json, print_table, BenchRecord};
use fivm_common::Value;
use fivm_core::{apps, Engine, EngineStats};
use fivm_dag::DagEngine;
use fivm_data::retailer::retailer_tree;
use fivm_data::{RetailerConfig, StreamConfig};
use fivm_query::{QuerySpec, ViewTree};
use fivm_relation::{BaseTable, Database, Tuple, Update};
use fivm_ring::Cofactor;
use std::time::Instant;

/// The Retailer continuous-feature COVAR query grouped by the key subset
/// encoded in `mask` (bit i selects the i-th of `locn`, `dateid`, `zip`,
/// `ksn`); mask 0 is the scalar query.  All 16 masks share declarations, so fingerprints below the
/// group-by divergence unify in the DAG.
fn retailer_masked(mask: usize) -> QuerySpec {
    let mut b = QuerySpec::builder(format!("retailer_covar_m{mask}"));
    let locn = b.key("locn");
    let dateid = b.key("dateid");
    let ksn = b.key("ksn");
    let zip = b.key("zip");
    let units = b.label("inventoryunits");
    let price = b.continuous_feature("price");
    let avghhi = b.continuous_feature("avghhi");
    let dist = b.continuous_feature("competitordistance");
    let population = b.continuous_feature("population");
    let medianage = b.continuous_feature("medianage");
    let maxtemp = b.continuous_feature("maxtemp");
    let mintemp = b.continuous_feature("mintemp");
    b.relation("Inventory", &[locn, dateid, ksn, units]);
    b.relation("Location", &[locn, zip, avghhi, dist]);
    b.relation("Census", &[zip, population, medianage]);
    b.relation("Item", &[ksn, price]);
    b.relation("Weather", &[locn, dateid, maxtemp, mintemp]);
    let ids = [locn, dateid, zip, ksn];
    let by: Vec<usize> = (0..4).filter(|i| mask & (1 << i) != 0).map(|i| ids[i]).collect();
    b.group_by(&by);
    b.build().expect("masked retailer query is valid")
}

fn fleet_trees(k: usize) -> Vec<ViewTree> {
    (0..k).map(|mask| retailer_tree(retailer_masked(mask))).collect()
}

fn quantize_tuple(t: &[Value]) -> Tuple {
    t.iter()
        .map(|v| match v {
            Value::Double(d) => Value::double(d.get().round()),
            other => other.clone(),
        })
        .collect::<Vec<_>>()
        .into_boxed_slice()
}

fn quantize_database(db: &Database) -> Database {
    let mut out = Database::new();
    for table in db.tables() {
        let mut t = BaseTable::new(table.name.clone(), table.schema.clone());
        for (row, mult) in &table.rows {
            t.push_with_multiplicity(quantize_tuple(row), *mult);
        }
        out.add_table(t).expect("names stay unique");
    }
    out
}

fn quantize_updates(updates: &[Update]) -> Vec<Update> {
    updates
        .iter()
        .map(|u| {
            Update::with_multiplicities(
                u.table.clone(),
                u.rows.iter().map(|(r, m)| (quantize_tuple(r), *m)).collect(),
            )
        })
        .collect()
}

fn negate(u: &Update) -> Update {
    Update::with_multiplicities(
        u.table.clone(),
        u.rows.iter().map(|(r, m)| (r.clone(), -m)).collect(),
    )
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

struct SideResult {
    seconds: f64,
    delta: EngineStats,
    table_bytes: usize,
}

/// One shared-vs-independent configuration at fleet size `k`: warm both
/// sides on the full stream, cross-check sinks, then time `rounds`
/// interleaved apply-revert windows per side.
fn run_config(
    k: usize,
    db: &Database,
    updates: &[Update],
    rounds: usize,
) -> (SideResult, SideResult, usize, usize) {
    let trees = fleet_trees(k);

    // Shared side: one DAG, K registered queries.
    let mut dag: DagEngine<Cofactor> = DagEngine::new();
    let mut dag_ids = Vec::with_capacity(k);
    let mut solo_nodes = 0usize;
    for tree in &trees {
        solo_nodes += tree.len() + tree.spec().num_relations();
        let lifts = apps::covar_lifts(tree.spec()).expect("continuous lifts");
        dag_ids.push(dag.register(tree.clone(), lifts, None).expect("register"));
    }
    let shared_nodes = dag.live_nodes();
    dag.load_database(db).expect("dag load");

    // Independent side: K standalone engines.
    let mut engines: Vec<Engine<Cofactor>> = trees
        .iter()
        .map(|t| {
            let mut e = apps::covar_engine(t.clone()).expect("covar engine");
            e.load_database(db).expect("engine load");
            e
        })
        .collect();

    // Warmup: the full stream once through both sides, then revert it so
    // every measured round starts from the same state.
    for u in updates {
        dag.apply_update(u).expect("dag warmup");
        for e in engines.iter_mut() {
            e.apply_update(u).expect("engine warmup");
        }
    }
    // Cross-check every sink bit-for-bit (quantized stream) post-warmup.
    for (id, e) in dag_ids.iter().zip(engines.iter()) {
        let got = dag.result_relation(*id).expect("dag result");
        assert!(
            got == e.result_relation(),
            "K={k}: shared sink diverged from its standalone engine"
        );
    }
    for u in updates.iter().rev() {
        let minus = negate(u);
        dag.apply_update(&minus).expect("dag revert");
        for e in engines.iter_mut() {
            e.apply_update(&minus).expect("engine revert");
        }
    }

    // Paired interleaved rounds over the identical churn window.
    let mut shared_secs = Vec::with_capacity(rounds);
    let mut indep_secs = Vec::with_capacity(rounds);
    let mut shared_delta = EngineStats::default();
    let mut indep_delta = EngineStats::default();
    for _ in 0..rounds {
        let before = dag.stats();
        let t = Instant::now();
        for u in updates {
            dag.apply_update(u).expect("dag measured");
        }
        for u in updates.iter().rev() {
            dag.apply_update(&negate(u)).expect("dag measured revert");
        }
        shared_secs.push(t.elapsed().as_secs_f64());
        shared_delta = dag.stats().delta_since(&before);
        assert_eq!(shared_delta.rehashes, 0, "K={k}: shared side rehashed in steady state");
        assert_eq!(shared_delta.ring_rehashes, 0, "K={k}: shared ring table rehashed");

        let before: Vec<EngineStats> = engines.iter().map(Engine::stats).collect();
        let t = Instant::now();
        for u in updates {
            for e in engines.iter_mut() {
                e.apply_update(u).expect("engine measured");
            }
        }
        for u in updates.iter().rev() {
            let minus = negate(u);
            for e in engines.iter_mut() {
                e.apply_update(&minus).expect("engine measured revert");
            }
        }
        indep_secs.push(t.elapsed().as_secs_f64());
        indep_delta = EngineStats::default();
        for (e, b) in engines.iter().zip(before.iter()) {
            let d = e.stats().delta_since(b);
            assert_eq!(d.rehashes, 0, "K={k}: an independent engine rehashed in steady state");
            indep_delta = indep_delta.merge(&d);
        }
    }

    let shared = SideResult {
        seconds: median(shared_secs),
        delta: shared_delta,
        table_bytes: dag.stats().table_bytes,
    };
    let independent = SideResult {
        seconds: median(indep_secs),
        delta: indep_delta,
        table_bytes: engines.iter().map(|e| e.stats().table_bytes).sum(),
    };
    (shared, independent, shared_nodes, solo_nodes)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_ivm.json".to_string());

    let (cfg, stream, rounds, fleet_sizes): (_, _, usize, Vec<usize>) = if quick {
        (
            RetailerConfig::tiny(),
            StreamConfig {
                bulks: 3,
                bulk_size: 100,
                delete_fraction: 0.2,
                seed: 42,
            },
            3,
            vec![1, 4],
        )
    } else {
        (
            RetailerConfig::benchmark(),
            StreamConfig {
                bulks: 10,
                bulk_size: 1_000,
                delete_fraction: 0.2,
                seed: 42,
            },
            5,
            vec![1, 4, 16],
        )
    };

    let db = quantize_database(&cfg.generate());
    let updates = quantize_updates(&cfg.update_stream(stream).into_bulks());
    // Caller rows per measured round: the stream applied and reverted.
    let round_rows: usize = updates.iter().map(Update::len).sum::<usize>() * 2;

    let mut records = Vec::new();
    let mut rows = Vec::new();
    for &k in &fleet_sizes {
        let (shared, independent, shared_nodes, solo_nodes) =
            run_config(k, &db, &updates, rounds);
        let aggregate_rows = round_rows * k;
        for (side, r) in [("shared", &shared), ("independent", &independent)] {
            records.push(BenchRecord {
                dataset: "Retailer".to_string(),
                app: format!("DAG-K{k}-{side}"),
                bulk_size: stream.bulk_size,
                updates: aggregate_rows,
                seconds: r.seconds,
                delta_entries: r.delta.delta_entries,
                ring_adds: r.delta.ring_adds,
                ring_muls: r.delta.ring_muls,
                probes: r.delta.probes,
                probe_hits: r.delta.probe_hits,
                rehashes: r.delta.rehashes,
                table_bytes: r.table_bytes,
            });
        }
        let speedup = independent.seconds / shared.seconds;
        rows.push(vec![
            format!("{k}"),
            format!("{shared_nodes}/{solo_nodes}"),
            format!("{:.0}", aggregate_rows as f64 / shared.seconds),
            format!("{:.0}", aggregate_rows as f64 / independent.seconds),
            format!("{speedup:.2}x"),
        ]);
        if k >= 4 {
            assert!(
                speedup >= 1.5,
                "K={k}: shared DAG speedup {speedup:.2}x below the 1.5x floor"
            );
        }
    }

    println!("\nMulti-query DAG: shared pass vs K independent engines (Retailer/COVAR)");
    print_table(
        &[
            "K",
            "DAG/solo nodes",
            "shared agg rows/s",
            "independent agg rows/s",
            "speedup",
        ],
        &rows,
    );
    println!("(medians of {rounds} interleaved paired rounds; rehashes asserted 0 on both sides)");

    match append_bench_json(&json_path, "DAG-", &records) {
        Ok(()) => println!("merged {} DAG-* records into {json_path}", records.len()),
        Err(e) => {
            eprintln!("failed to write {json_path}: {e}");
            std::process::exit(1);
        }
    }
}
