//! Diagnostic: allocation counts and phase timings on the maintenance hot
//! path.  Not an experiment from the paper — a tool for keeping the
//! in-place hot path honest (run after changes to `fivm-core`/`fivm-ring`
//! to see allocations/row, probe volume and where the time goes; the
//! trailing ablation compares allocs/probe and ns/probe between the boxed
//! and dictionary-encoded key representations).

// xlint:allow-file(unsafe-boundary): counting allocations requires implementing the unsafe GlobalAlloc trait — this is a diagnostic binary, not engine code; no engine data structure is touched with unsafe here.

use fivm_bench::{ProbeAblation, Workload};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let workload = Workload::retailer(
        fivm_data::RetailerConfig::default(),
        fivm_data::StreamConfig {
            bulks: if quick { 10 } else { 100 },
            bulk_size: 1_000,
            delete_fraction: 0.2,
            seed: 1,
        },
        true,
    );
    let rows: usize = workload.updates.iter().map(|u| u.len()).sum();
    println!("Retailer, {} update rows in {} bulks", rows, workload.updates.len());

    // COUNT engine.
    let mut count = workload.count_engine();
    count.load_database(&workload.database).unwrap();
    let (a0, t0) = (allocs(), Instant::now());
    for u in &workload.updates {
        black_box(count.apply_update(u).unwrap());
    }
    let (dt, da) = (t0.elapsed(), allocs() - a0);
    println!(
        "COUNT : {:>8.0} rows/s  {:>6.1} allocs/row  {:>7.0} ns/row  stats={:?}",
        rows as f64 / dt.as_secs_f64(),
        da as f64 / rows as f64,
        dt.as_nanos() as f64 / rows as f64,
        count.stats()
    );

    // COVAR engine.
    let mut covar = workload.covar_engine();
    covar.load_database(&workload.database).unwrap();
    let (a0, t0) = (allocs(), Instant::now());
    for u in &workload.updates {
        black_box(covar.apply_update(u).unwrap());
    }
    let (dt, da) = (t0.elapsed(), allocs() - a0);
    println!(
        "COVAR : {:>8.0} rows/s  {:>6.1} allocs/row  {:>7.0} ns/row  stats={:?}",
        rows as f64 / dt.as_secs_f64(),
        da as f64 / rows as f64,
        dt.as_nanos() as f64 / rows as f64,
        covar.stats()
    );

    // Probe ablation: the same fact-table keys probed as boxed Value
    // tuples vs dictionary-encoded keys (allocs/probe must be 0 for both —
    // probing never allocates — the difference is pure probe cost).
    let ablation = ProbeAblation::from_workload(&workload);
    let passes = if quick { 20 } else { 100 };
    for (label, encoded) in [("boxed ", false), ("encode", true)] {
        let (a0, t0) = (allocs(), Instant::now());
        let mut acc = 0i64;
        for _ in 0..passes {
            acc += if encoded {
                ablation.run_encoded()
            } else {
                ablation.run_boxed()
            };
        }
        black_box(acc);
        let (dt, da) = (t0.elapsed(), allocs() - a0);
        let probes = (ablation.num_probes() * passes) as f64;
        println!(
            "{label}: {:>8.1}M probes/s  {:>6.1} allocs/probe  {:>7.1} ns/probe  ({} keys)",
            probes / dt.as_secs_f64() / 1e6,
            da as f64 / probes,
            dt.as_nanos() as f64 / probes,
            ablation.len(),
        );
    }

    // Baseline cost of just iterating + cloning the update rows (what any
    // engine pays before touching views).
    let (a0, t0) = (allocs(), Instant::now());
    let mut n = 0usize;
    for u in &workload.updates {
        for (row, m) in u.rows.iter() {
            black_box((row.clone(), m));
            n += 1;
        }
    }
    let (dt, da) = (t0.elapsed(), allocs() - a0);
    println!(
        "clone : {:>8.0} rows/s  {:>6.1} allocs/row  {:>7.0} ns/row  ({n} rows)",
        rows as f64 / dt.as_secs_f64(),
        da as f64 / rows as f64,
        dt.as_nanos() as f64 / rows as f64,
    );
}
