#![forbid(unsafe_code)]
//! Shared harness code for the F-IVM experiments and benchmarks.
//!
//! The experiment binaries in `src/bin/` regenerate the paper's figures and
//! claims (see `DESIGN.md` and `EXPERIMENTS.md` for the experiment index);
//! the Criterion benchmarks in `benches/` provide statistically sound
//! micro/macro measurements of the same scenarios.

use fivm_common::{Dict, EncodedKey, EncodedValue, FxHashMap, Value};
use fivm_core::{apps, BinSpec, Engine, MaterializedView};
use fivm_query::{QuerySpec, ViewTree};
use fivm_relation::{Database, Tuple, Update};
use fivm_ring::{BoxedRelValue, Cofactor, GenCofactor, RelKey, RelValue};
use std::collections::HashMap;
use std::time::Instant;

/// Which dataset an experiment runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dataset {
    /// The synthetic Retailer snowflake (5 relations, Inventory fact table).
    Retailer,
    /// The synthetic Favorita star (6 relations, Sales fact table).
    Favorita,
}

impl Dataset {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Retailer => "Retailer",
            Dataset::Favorita => "Favorita",
        }
    }
}

/// A prepared workload: database, query, view tree and update stream.
pub struct Workload {
    /// The dataset this workload was generated from.
    pub dataset: Dataset,
    /// The generated database.
    pub database: Database,
    /// The query (mixed continuous/categorical features).
    pub spec: QuerySpec,
    /// The view tree under the hand-written (paper-style) variable order.
    pub tree: ViewTree,
    /// The bulk update stream against the fact table.
    pub updates: Vec<Update>,
}

impl Workload {
    /// Builds a Retailer workload with the mixed (categorical + continuous)
    /// query.
    pub fn retailer(
        cfg: fivm_data::RetailerConfig,
        stream: fivm_data::StreamConfig,
        continuous_only: bool,
    ) -> Self {
        let database = cfg.generate();
        let spec = if continuous_only {
            fivm_data::retailer::retailer_query_continuous()
        } else {
            fivm_data::retailer::retailer_query_mixed()
        };
        let tree = fivm_data::retailer::retailer_tree(spec.clone());
        let updates = cfg.update_stream(stream).into_bulks();
        Workload {
            dataset: Dataset::Retailer,
            database,
            spec,
            tree,
            updates,
        }
    }

    /// Builds a Favorita workload.
    pub fn favorita(cfg: fivm_data::FavoritaConfig, stream: fivm_data::StreamConfig) -> Self {
        let database = cfg.generate();
        let spec = fivm_data::favorita::favorita_query();
        let tree = fivm_data::favorita::favorita_tree(spec.clone());
        let updates = cfg.update_stream(stream).into_bulks();
        Workload {
            dataset: Dataset::Favorita,
            database,
            spec,
            tree,
            updates,
        }
    }

    /// Total number of individual updates in the stream.
    pub fn total_updates(&self) -> usize {
        self.updates.iter().map(Update::len).sum()
    }

    /// A COVAR engine over the workload's query (requires the continuous
    /// query variant for Retailer).
    pub fn covar_engine(&self) -> Engine<Cofactor> {
        apps::covar_engine(self.tree.clone()).expect("continuous covar engine")
    }

    /// A generalized-COVAR engine (mixed features).
    pub fn gen_covar_engine(&self) -> Engine<GenCofactor> {
        apps::gen_covar_engine(self.tree.clone()).expect("generalized covar engine")
    }

    /// A count engine.
    pub fn count_engine(&self) -> Engine<i64> {
        apps::count_engine(self.tree.clone()).expect("count engine")
    }

    /// An MI engine; continuous aggregate attributes are binned into 10
    /// equi-width bins over a generous range.
    pub fn mi_engine(&self) -> Engine<GenCofactor> {
        apps::mi_engine(self.tree.clone(), &self.default_binnings()).expect("mi engine")
    }

    /// Default equi-width binnings for the continuous aggregate attributes,
    /// sized to the value ranges produced by the synthetic generators.
    pub fn default_binnings(&self) -> HashMap<usize, BinSpec> {
        let layout = fivm_core::AggregateLayout::of(&self.spec);
        let mut bins = HashMap::new();
        for (pos, &v) in layout.vars.iter().enumerate() {
            if layout.kinds[pos].is_continuous() {
                let spec = match layout.names[pos].as_str() {
                    "inventoryunits" => BinSpec::new(0.0, 500.0, 10),
                    "unitsales" => BinSpec::new(0.0, 80.0, 10),
                    "price" => BinSpec::new(0.0, 80.0, 10),
                    "avghhi" => BinSpec::new(30_000.0, 120_000.0, 10),
                    "competitordistance" => BinSpec::new(0.0, 40.0, 10),
                    "population" => BinSpec::new(5_000.0, 200_000.0, 10),
                    "medianage" => BinSpec::new(25.0, 55.0, 10),
                    "maxtemp" => BinSpec::new(-15.0, 40.0, 10),
                    "mintemp" => BinSpec::new(-15.0, 20.0, 10),
                    "transactions" => BinSpec::new(200.0, 4_000.0, 10),
                    "oilprice" => BinSpec::new(20.0, 80.0, 10),
                    _ => BinSpec::new(0.0, 1_000.0, 10),
                };
                bins.insert(v, spec);
            }
        }
        bins
    }
}

/// The encoded-vs-boxed key ablation: the same key set stored and probed
/// under both view-storage designs, so the probe-path gain of dictionary
/// encoding is measurable in isolation from the rest of the engine.
///
/// * **Boxed** — the pre-encoding view storage: an `FxHashMap` keyed by
///   boxed `Value` tuples (enum-tag matching, `Arc<str>` compares, one
///   heap allocation per key), payloads inline.
/// * **Encoded** — the hash-once view storage, measured on the real
///   [`MaterializedView`]: dictionary-encoded flat-word keys in a slot
///   slab behind a [`fivm_common::RawTable`] of precomputed hashes.
///
/// Both sides hold identical logical keys (the fact table of a workload)
/// and are probed with the identical probe sequence (the keys of the
/// update stream — a realistic hit/miss mix).  Probe-key hashing is inside
/// the measured loop for both, as it is on the engine's hot path.
pub struct ProbeAblation {
    boxed: FxHashMap<Tuple, i64>,
    boxed_probes: Vec<Tuple>,
    encoded: MaterializedView<i64>,
    encoded_probes: Vec<EncodedKey>,
}

impl ProbeAblation {
    /// Builds both representations from a workload's fact table and update
    /// stream.
    pub fn from_workload(workload: &Workload) -> ProbeAblation {
        let fact_name = &workload.updates[0].table;
        let fact = workload
            .database
            .table(fact_name)
            .expect("update stream targets a database table");
        let mut dict = Dict::new();
        let mut boxed: FxHashMap<Tuple, i64> = FxHashMap::default();
        let mut encoded: MaterializedView<i64> =
            MaterializedView::new((0..fact.schema.arity()).collect());
        for (row, mult) in &fact.rows {
            *boxed.entry(row.clone()).or_insert(0) += mult;
            encoded.add(&mut dict, row, *mult);
        }
        boxed.retain(|_, m| *m != 0);
        let mut boxed_probes = Vec::new();
        let mut encoded_probes = Vec::new();
        for bulk in &workload.updates {
            for (row, _) in &bulk.rows {
                boxed_probes.push(row.clone());
                encoded_probes.push(dict.encode_key(row));
            }
        }
        ProbeAblation {
            boxed,
            boxed_probes,
            encoded,
            encoded_probes,
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.boxed.len()
    }

    /// Whether the ablation holds no keys.
    pub fn is_empty(&self) -> bool {
        self.boxed.is_empty()
    }

    /// Number of probes per pass.
    pub fn num_probes(&self) -> usize {
        self.boxed_probes.len()
    }

    /// One probe pass over the boxed representation; returns the payload
    /// sum of the hits (both passes must agree).
    pub fn run_boxed(&self) -> i64 {
        let mut acc = 0;
        for key in &self.boxed_probes {
            if let Some(v) = self.boxed.get(&key[..]) {
                acc += *v;
            }
        }
        acc
    }

    /// One probe pass over the encoded representation (hash once, probe
    /// the primary map, read the payload out of the slab).
    pub fn run_encoded(&self) -> i64 {
        let mut acc = 0;
        for key in &self.encoded_probes {
            let hash = key.fx_hash();
            if let Some(slot) = self.encoded.find_slot(hash, key) {
                acc += *self.encoded.slot_payload(slot);
            }
        }
        acc
    }

    /// Times `passes` probe passes of one representation, returning
    /// probes/second (the hit sums are checked for agreement first).
    pub fn measure(&self, encoded: bool, passes: usize) -> f64 {
        assert_eq!(self.run_boxed(), self.run_encoded(), "representations diverge");
        let start = Instant::now();
        let mut acc = 0i64;
        for _ in 0..passes {
            acc += if encoded { self.run_encoded() } else { self.run_boxed() };
        }
        let secs = start.elapsed().as_secs_f64();
        std::hint::black_box(acc);
        (self.num_probes() * passes) as f64 / secs
    }
}

/// The encoded-vs-boxed **ring-key** ablation: the same relation-ring
/// operation stream applied to [`fivm_ring::RelValue`] (the hash-once
/// encoded interior) and to [`fivm_ring::BoxedRelValue`] (the boxed
/// `Value`-keyed reference representation), so the ring-interior gain of
/// dictionary encoding is measurable in isolation from the engine — the
/// `RING-*` counterpart of the `PROBE-*` records.
///
/// The op stream mimics interaction-matrix (`Q_XY`) maintenance, the
/// dominant relation-ring operation of the generalized COVAR/MI
/// applications: per input row, `acc += (g_X(x) ⋈ g_Y(y)) · mult` into one
/// of a fixed set of accumulators.  Each measured pass applies every op
/// with `+mult` and then with `-mult`, so the accumulators return to their
/// baseline and later passes measure steady state (warm tables, churn
/// without growth) — the same regime the engine runs in.
pub struct RingAblation {
    ctx: fivm_ring::RingCtx,
    boxed: Vec<fivm_ring::BoxedRelValue>,
    encoded: Vec<fivm_ring::RelValue>,
    /// `(accumulator, x, y, mult)` per op, in raw and encoded form.
    ops: Vec<(usize, Value, Value, i64)>,
    ops_encoded: Vec<(usize, EncodedValue, EncodedValue, i64)>,
}

impl RingAblation {
    /// Builds the ablation from a workload's update stream: `x` and `y`
    /// are the first and last column of each update row (a join key and a
    /// measure — realistic distinct-value distributions on both sides).
    pub fn from_workload(workload: &Workload, accumulators: usize) -> RingAblation {
        let ctx = fivm_ring::RingCtx::new();
        let mut ops = Vec::new();
        let mut ops_encoded = Vec::new();
        let mut slot = 0usize;
        for bulk in &workload.updates {
            for (row, mult) in &bulk.rows {
                let (x, y) = (row[0].clone(), row[row.len() - 1].clone());
                ops_encoded.push((slot, ctx.encode_value(&x), ctx.encode_value(&y), *mult));
                ops.push((slot, x, y, *mult));
                slot = (slot + 1) % accumulators;
            }
        }
        let mut ablation = RingAblation {
            ctx,
            boxed: vec![fivm_ring::BoxedRelValue::empty(); accumulators],
            encoded: vec![fivm_ring::RelValue::empty(); accumulators],
            ops,
            ops_encoded,
        };
        // Warm-up: one +/- pass sizes every table; steady state follows.
        ablation.run_boxed();
        ablation.run_encoded();
        // The agreement gate runs once, here — `measure` stays pure timing.
        assert!(
            ablation.representations_agree(),
            "ring representations diverge"
        );
        ablation
    }

    /// Ring operations per pass (each op is applied with `+` and `-`).
    pub fn num_ops(&self) -> usize {
        self.ops.len() * 2
    }

    /// One steady-state pass over the boxed representation.
    pub fn run_boxed(&mut self) {
        use fivm_ring::{BoxedRelValue, Ring};
        for sign in [1i64, -1] {
            for (slot, x, y, mult) in &self.ops {
                let gx = BoxedRelValue::indicator(0, x.clone());
                let gy = BoxedRelValue::indicator(1, y.clone());
                self.boxed[*slot].fma_scaled(&gx, &gy, sign * mult);
            }
        }
    }

    /// One steady-state pass over the encoded representation.
    pub fn run_encoded(&mut self) {
        use fivm_ring::{RelValue, Ring};
        for sign in [1i64, -1] {
            for (slot, x, y, mult) in &self.ops_encoded {
                let gx = RelValue::indicator(0, *x);
                let gy = RelValue::indicator(1, *y);
                self.encoded[*slot].fma_scaled(&gx, &gy, sign * mult);
            }
        }
    }

    /// Checks that both representations hold identical relations after a
    /// half-pass (the agreement gate run before timing).
    pub fn representations_agree(&mut self) -> bool {
        use fivm_ring::{BoxedRelValue, RelValue, Ring};
        for (slot, x, y, mult) in &self.ops {
            let gx = BoxedRelValue::indicator(0, x.clone());
            let gy = BoxedRelValue::indicator(1, y.clone());
            self.boxed[*slot].fma_scaled(&gx, &gy, *mult);
        }
        for (slot, x, y, mult) in &self.ops_encoded {
            let gx = RelValue::indicator(0, *x);
            let gy = RelValue::indicator(1, *y);
            self.encoded[*slot].fma_scaled(&gx, &gy, *mult);
        }
        let agree = self.ctx.with_dict(|dict| {
            self.boxed.iter().zip(self.encoded.iter()).all(|(b, e)| {
                let decoded = e.decode_entries(dict);
                let reference = b.sorted_entries();
                decoded.len() == reference.len()
                    && decoded
                        .iter()
                        .zip(reference.iter())
                        .all(|((dk, dw), (rk, rw))| dk == rk && dw == rw)
            })
        });
        // Undo the half-pass so timing starts from the baseline.
        for (slot, x, y, mult) in &self.ops {
            let gx = BoxedRelValue::indicator(0, x.clone());
            let gy = BoxedRelValue::indicator(1, y.clone());
            self.boxed[*slot].fma_scaled(&gx, &gy, -mult);
        }
        for (slot, x, y, mult) in &self.ops_encoded {
            let gx = RelValue::indicator(0, *x);
            let gy = RelValue::indicator(1, *y);
            self.encoded[*slot].fma_scaled(&gx, &gy, -mult);
        }
        agree
    }

    /// Times `passes` steady-state passes of one representation, returning
    /// ring ops/second (representations are checked for agreement once,
    /// at construction).
    pub fn measure(&mut self, encoded: bool, passes: usize) -> f64 {
        let start = Instant::now();
        for _ in 0..passes {
            if encoded {
                self.run_encoded();
            } else {
                self.run_boxed();
            }
        }
        let secs = start.elapsed().as_secs_f64();
        (self.num_ops() * passes) as f64 / secs
    }
}

/// The ring-table **memory** ablation: the same relation population held
/// in three storage designs, measured in bytes per stored entry — the
/// `MEM-*` counterpart of the `PROBE-*`/`RING-*` speed ablations.
///
/// Per input row of the workload's update stream the ablation maintains
/// the three relation shapes generalized-cofactor maintenance actually
/// materializes (see `GenCofactor`): a **scalar** component (`s`/`Q` of a
/// continuous attribute — a single-entry relation over the empty key), a
/// **linear** categorical component (`s_X = SUM(1) GROUP BY X`), and a
/// pairwise **interaction** component (`Q_XY`, grouped by two
/// attributes).  Accumulators are keyed by the row's *fact key* (every
/// column but the trailing measure) — the granularity of the fact-leaf
/// view, which holds the overwhelming majority of an engine's ring
/// payloads (one payload per distinct fact key, versus a handful of
/// coarser interior/root keys).  That is the regime the ring interior
/// lives in: *many small tables*, which is exactly what the old
/// `Option`-slot layout taxed most (8-slot minimum capacity, per-slot
/// discriminant).
///
/// Three numbers come out, all for identical logical relations:
///
/// * **new** — [`RelValue::allocated_bytes`] under the discriminant-free
///   split layout,
/// * **option** — the modeled cost of the previous
///   `Vec<Option<(u64, RelKey, f64)>>` layout (same growth policy with the
///   old 8-slot minimum; per-slot cost taken from `size_of` so the model
///   tracks the compiler's real `Option` layout),
/// * **boxed** — [`BoxedRelValue::approx_heap_bytes`] of the boxed-`Value`
///   reference representation.
pub struct MemAblation {
    scalar: Vec<RelValue>,
    linear: Vec<RelValue>,
    interaction: Vec<RelValue>,
    boxed: Vec<BoxedRelValue>,
}

impl MemAblation {
    /// Replays the workload's update stream, accumulating one component
    /// triple per distinct fact key (every row column but the trailing
    /// measure).
    pub fn from_workload(workload: &Workload) -> MemAblation {
        let ctx = fivm_ring::RingCtx::new();
        let mut groups: FxHashMap<Vec<(u8, u64)>, usize> = FxHashMap::default();
        let mut scalar: Vec<RelValue> = Vec::new();
        let mut linear: Vec<RelValue> = Vec::new();
        let mut interaction: Vec<RelValue> = Vec::new();
        let mut boxed_scalar: Vec<BoxedRelValue> = Vec::new();
        let mut boxed_linear: Vec<BoxedRelValue> = Vec::new();
        let mut boxed_interaction: Vec<BoxedRelValue> = Vec::new();
        let empty = RelKey::empty();
        for bulk in &workload.updates {
            for (row, mult) in &bulk.rows {
                let w = *mult as f64;
                let (x, y) = (&row[0], &row[row.len() - 1]);
                let (ex, ey) = (ctx.encode_value(x), ctx.encode_value(y));
                let fact_key: Vec<(u8, u64)> = row[..row.len() - 1]
                    .iter()
                    .map(|v| {
                        let ev = ctx.encode_value(v);
                        (ev.tag, ev.word)
                    })
                    .collect();
                let slot = *groups.entry(fact_key).or_insert_with(|| {
                    scalar.push(RelValue::empty());
                    linear.push(RelValue::empty());
                    interaction.push(RelValue::empty());
                    boxed_scalar.push(BoxedRelValue::empty());
                    boxed_linear.push(BoxedRelValue::empty());
                    boxed_interaction.push(BoxedRelValue::empty());
                    scalar.len() - 1
                });
                scalar[slot].add_entry(&empty, w);
                linear[slot].add_entry(&RelKey::singleton(0, ex), w);
                interaction[slot].add_product_scaled(
                    &RelValue::indicator(0, ex),
                    &RelValue::indicator(1, ey),
                    w,
                );
                boxed_scalar[slot].add_scaled(&BoxedRelValue::scalar(1.0), w);
                boxed_linear[slot].add_scaled(&BoxedRelValue::indicator(0, x.clone()), w);
                boxed_interaction[slot].add_product_scaled(
                    &BoxedRelValue::indicator(0, x.clone()),
                    &BoxedRelValue::indicator(1, y.clone()),
                    w,
                );
            }
        }
        let mut boxed = boxed_scalar;
        boxed.append(&mut boxed_linear);
        boxed.append(&mut boxed_interaction);
        MemAblation {
            scalar,
            linear,
            interaction,
            boxed,
        }
    }

    fn relations(&self) -> impl Iterator<Item = &RelValue> {
        self.scalar
            .iter()
            .chain(self.linear.iter())
            .chain(self.interaction.iter())
    }

    /// Stored entries across the population (identical in every design;
    /// checked against the boxed mirror).
    pub fn entries(&self) -> usize {
        let encoded: usize = self.relations().map(RelValue::len).sum();
        let boxed: usize = self.boxed.iter().map(BoxedRelValue::len).sum();
        assert_eq!(encoded, boxed, "mem ablation representations diverge");
        encoded
    }

    /// Total bytes under the new discriminant-free layout.
    pub fn new_bytes(&self) -> usize {
        self.relations().map(RelValue::allocated_bytes).sum()
    }

    /// Total bytes under the modeled `Option`-slot layout
    /// ([`RelValue::option_layout_bytes`], the one model shared with the
    /// regression gate in `crates/ring/tests/mem_gate.rs`).
    pub fn option_bytes(&self) -> usize {
        self.relations().map(RelValue::option_layout_bytes).sum()
    }

    /// Total approximate bytes under the boxed-`Value` reference layout.
    pub fn boxed_bytes(&self) -> usize {
        self.boxed.iter().map(BoxedRelValue::approx_heap_bytes).sum()
    }
}

/// Timing result of replaying an update stream through a maintenance
/// strategy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Throughput {
    /// Total wall-clock seconds spent applying updates.
    pub seconds: f64,
    /// Number of individual updates applied.
    pub updates: usize,
}

impl Throughput {
    /// Updates per second.
    pub fn updates_per_second(&self) -> f64 {
        if self.seconds == 0.0 {
            f64::INFINITY
        } else {
            self.updates as f64 / self.seconds
        }
    }
}

/// Measures the wall-clock time of applying every update bulk through a
/// callback (the callback applies one bulk and may also read the result, to
/// mirror the refresh-per-bulk behaviour of the demo).
pub fn measure<F: FnMut(&Update)>(updates: &[Update], mut apply: F) -> Throughput {
    let start = Instant::now();
    for bulk in updates {
        apply(bulk);
    }
    Throughput {
        seconds: start.elapsed().as_secs_f64(),
        updates: updates.iter().map(Update::len).sum(),
    }
}

/// One measured F-IVM configuration, as recorded in `BENCH_ivm.json`.
///
/// The JSON file gives every future perf PR a machine-readable baseline:
/// rows/second plus the engine's own work counters (delta entries and ring
/// operations), so a regression in either wall-clock or algorithmic work
/// is visible from the artifact alone.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Dataset name (`Retailer`, `Favorita`).
    pub dataset: String,
    /// Application / ring (`COUNT`, `COVAR`, `MI`).
    pub app: String,
    /// Updates per bulk in the replayed stream.
    pub bulk_size: usize,
    /// Individual updates applied (for `MEM-*` records: entries measured).
    pub updates: usize,
    /// Wall-clock seconds spent applying them.  `0.0` marks an *untimed*
    /// record (the memory-only `MEM-*` rows) — the JSON writer emits
    /// `rows_per_sec: 0.0` for those instead of a fabricated rate.
    pub seconds: f64,
    /// Delta entries pushed into views (update phase only).
    pub delta_entries: usize,
    /// Ring additions (update phase only).
    pub ring_adds: usize,
    /// Ring multiplications (update phase only).
    pub ring_muls: usize,
    /// Sibling-view probes requested during propagation (update phase
    /// only) — with hash-once probing each counts one key hash.
    pub probes: usize,
    /// Probes that found a match (update phase only).
    pub probe_hits: usize,
    /// View-table rehash events (measured window only).  Engine records
    /// report **warm-window deltas** — a post-warmup snapshot is
    /// subtracted — so a non-zero value here is a violation of the
    /// steady-state "rehashes pinned to 0" contract, not warmup growth.
    pub rehashes: usize,
    /// Byte gauge.  Engine records: the absolute `EngineStats::table_bytes`
    /// footprint (all materialized view storage) at the end of the run —
    /// for sharded records, summed across shards.  `MEM-*` records: total
    /// bytes of the measured relation population under the named layout.
    /// 0 for the speed-only `PROBE-*`/`RING-*` ablations.
    pub table_bytes: usize,
}

impl BenchRecord {
    /// Updates (rows) per second.
    pub fn rows_per_sec(&self) -> f64 {
        if self.seconds == 0.0 {
            f64::INFINITY
        } else {
            self.updates as f64 / self.seconds
        }
    }
}

/// Renders one record as a single JSON object line (no indentation, no
/// trailing comma) — the unit both artifact writers assemble from.
fn render_record(r: &BenchRecord) -> String {
    format!(
        concat!(
            "{{\"dataset\": \"{}\", \"app\": \"{}\", \"bulk_size\": {}, ",
            "\"updates\": {}, \"seconds\": {:.6}, \"rows_per_sec\": {:.1}, ",
            "\"delta_entries\": {}, \"ring_adds\": {}, \"ring_muls\": {}, ",
            "\"probes\": {}, \"probe_hits\": {}, \"rehashes\": {}, ",
            "\"table_bytes\": {}}}"
        ),
        r.dataset,
        r.app,
        r.bulk_size,
        r.updates,
        r.seconds,
        // Untimed (memory-only) records report 0.0, not a fabricated
        // or non-JSON `inf` rate.
        if r.seconds == 0.0 { 0.0 } else { r.rows_per_sec() },
        r.delta_entries,
        r.ring_adds,
        r.ring_muls,
        r.probes,
        r.probe_hits,
        r.rehashes,
        r.table_bytes,
    )
}

/// Assembles rendered record lines into the `BENCH_*.json` document.
fn write_record_lines(path: &str, lines: &[String]) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"benchmark\": \"ivm_throughput\",\n  \"workloads\": [\n");
    for (i, line) in lines.iter().enumerate() {
        out.push_str("    ");
        out.push_str(line);
        if i + 1 != lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Writes the benchmark records as a `BENCH_*.json` artifact (hand-rolled
/// JSON — the build environment has no serde).
pub fn write_bench_json(path: &str, records: &[BenchRecord]) -> std::io::Result<()> {
    let lines: Vec<String> = records.iter().map(render_record).collect();
    write_record_lines(path, &lines)
}

/// Merges `records` into an existing `BENCH_*.json` artifact: previous
/// records whose `app` starts with `family` (e.g. `"REC-"`) are replaced,
/// everything else is kept verbatim.  Lets a family-specific experiment
/// (like `exp_recovery`) refresh its own rows without clobbering the
/// records `exp_throughput` wrote.  A missing artifact is created.
///
/// Hand-rolled like the writer: record lines are recognized by their
/// `    {"dataset": ` shape, so this only understands artifacts produced
/// by [`write_bench_json`] / itself.
pub fn append_bench_json(
    path: &str,
    family: &str,
    records: &[BenchRecord],
) -> std::io::Result<()> {
    let existing = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return write_bench_json(path, records);
        }
        Err(e) => return Err(e),
    };
    let family_marker = format!("\"app\": \"{family}");
    let mut lines: Vec<String> = existing
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"dataset\":"))
        .map(|l| l.trim().trim_end_matches(',').to_string())
        .filter(|l| !l.contains(&family_marker))
        .collect();
    lines.extend(records.iter().map(render_record));
    write_record_lines(path, &lines)
}

/// Formats a ratio like `123.4x` with a sensible precision.
pub fn format_speedup(ratio: f64) -> String {
    if ratio >= 100.0 {
        format!("{ratio:.0}x")
    } else if ratio >= 10.0 {
        format!("{ratio:.1}x")
    } else {
        format!("{ratio:.2}x")
    }
}

/// Prints a simple aligned table: a header row followed by data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_retailer() -> Workload {
        Workload::retailer(
            fivm_data::RetailerConfig::tiny(),
            fivm_data::StreamConfig {
                bulks: 2,
                bulk_size: 20,
                delete_fraction: 0.2,
                seed: 1,
            },
            true,
        )
    }

    #[test]
    fn workload_construction_and_engines() {
        let w = tiny_retailer();
        assert_eq!(w.dataset.name(), "Retailer");
        assert_eq!(w.total_updates(), 40);
        let mut e = w.covar_engine();
        e.load_database(&w.database).unwrap();
        assert!(e.result().count() > 0.0);
        let mut c = w.count_engine();
        c.load_database(&w.database).unwrap();
        assert!(c.result() > 0);
        let mut mi = w.mi_engine();
        mi.load_database(&w.database).unwrap();
        assert!(mi.result().count() > 0.0);
    }

    #[test]
    fn favorita_workload_and_gen_covar() {
        let w = Workload::favorita(
            fivm_data::FavoritaConfig::tiny(),
            fivm_data::StreamConfig {
                bulks: 1,
                bulk_size: 10,
                delete_fraction: 0.0,
                seed: 2,
            },
        );
        assert_eq!(w.dataset.name(), "Favorita");
        let mut e = w.gen_covar_engine();
        e.load_database(&w.database).unwrap();
        assert!(e.result().count() > 0.0);
    }

    #[test]
    fn probe_ablation_representations_agree() {
        let w = tiny_retailer();
        let ab = ProbeAblation::from_workload(&w);
        assert!(!ab.is_empty());
        assert_eq!(ab.num_probes(), 40);
        // Both representations must return identical hit sums, and the
        // measurement helper enforces that before timing.
        assert_eq!(ab.run_boxed(), ab.run_encoded());
        assert!(ab.measure(true, 2) > 0.0);
        assert!(ab.measure(false, 2) > 0.0);
    }

    #[test]
    fn mem_ablation_accounts_identical_populations() {
        let w = tiny_retailer();
        let mem = MemAblation::from_workload(&w);
        let entries = mem.entries();
        assert!(entries > 0);
        assert!(mem.new_bytes() > 0);
        // The modeled option layout can never beat the new layout.  (No
        // ordering is asserted against the boxed side: a singleton-heavy
        // population makes a 1-entry `FxHashMap` smaller than the old
        // 8-slot table floor — the boxed layout loses on speed and
        // allocation count, not necessarily on resident bytes.)
        assert!(mem.new_bytes() <= mem.option_bytes());
        assert!(mem.boxed_bytes() > 0);
    }

    #[test]
    fn measurement_and_formatting_helpers() {
        let w = tiny_retailer();
        let mut engine = w.count_engine();
        engine.load_database(&w.database).unwrap();
        let t = measure(&w.updates, |bulk| {
            engine.apply_update(bulk).unwrap();
        });
        assert_eq!(t.updates, 40);
        assert!(t.updates_per_second() > 0.0);
        assert_eq!(format_speedup(250.0), "250x");
        assert_eq!(format_speedup(12.34), "12.3x");
        assert_eq!(format_speedup(2.5), "2.50x");
        print_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
    }
}
