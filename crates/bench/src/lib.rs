//! Shared harness code for the F-IVM experiments and benchmarks.
//!
//! The experiment binaries in `src/bin/` regenerate the paper's figures and
//! claims (see `DESIGN.md` and `EXPERIMENTS.md` for the experiment index);
//! the Criterion benchmarks in `benches/` provide statistically sound
//! micro/macro measurements of the same scenarios.

use fivm_core::{apps, BinSpec, Engine};
use fivm_query::{QuerySpec, ViewTree};
use fivm_relation::{Database, Update};
use fivm_ring::{Cofactor, GenCofactor};
use std::collections::HashMap;
use std::time::Instant;

/// Which dataset an experiment runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dataset {
    /// The synthetic Retailer snowflake (5 relations, Inventory fact table).
    Retailer,
    /// The synthetic Favorita star (6 relations, Sales fact table).
    Favorita,
}

impl Dataset {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Retailer => "Retailer",
            Dataset::Favorita => "Favorita",
        }
    }
}

/// A prepared workload: database, query, view tree and update stream.
pub struct Workload {
    /// The dataset this workload was generated from.
    pub dataset: Dataset,
    /// The generated database.
    pub database: Database,
    /// The query (mixed continuous/categorical features).
    pub spec: QuerySpec,
    /// The view tree under the hand-written (paper-style) variable order.
    pub tree: ViewTree,
    /// The bulk update stream against the fact table.
    pub updates: Vec<Update>,
}

impl Workload {
    /// Builds a Retailer workload with the mixed (categorical + continuous)
    /// query.
    pub fn retailer(
        cfg: fivm_data::RetailerConfig,
        stream: fivm_data::StreamConfig,
        continuous_only: bool,
    ) -> Self {
        let database = cfg.generate();
        let spec = if continuous_only {
            fivm_data::retailer::retailer_query_continuous()
        } else {
            fivm_data::retailer::retailer_query_mixed()
        };
        let tree = fivm_data::retailer::retailer_tree(spec.clone());
        let updates = cfg.update_stream(stream).into_bulks();
        Workload {
            dataset: Dataset::Retailer,
            database,
            spec,
            tree,
            updates,
        }
    }

    /// Builds a Favorita workload.
    pub fn favorita(cfg: fivm_data::FavoritaConfig, stream: fivm_data::StreamConfig) -> Self {
        let database = cfg.generate();
        let spec = fivm_data::favorita::favorita_query();
        let tree = fivm_data::favorita::favorita_tree(spec.clone());
        let updates = cfg.update_stream(stream).into_bulks();
        Workload {
            dataset: Dataset::Favorita,
            database,
            spec,
            tree,
            updates,
        }
    }

    /// Total number of individual updates in the stream.
    pub fn total_updates(&self) -> usize {
        self.updates.iter().map(Update::len).sum()
    }

    /// A COVAR engine over the workload's query (requires the continuous
    /// query variant for Retailer).
    pub fn covar_engine(&self) -> Engine<Cofactor> {
        apps::covar_engine(self.tree.clone()).expect("continuous covar engine")
    }

    /// A generalized-COVAR engine (mixed features).
    pub fn gen_covar_engine(&self) -> Engine<GenCofactor> {
        apps::gen_covar_engine(self.tree.clone()).expect("generalized covar engine")
    }

    /// A count engine.
    pub fn count_engine(&self) -> Engine<i64> {
        apps::count_engine(self.tree.clone()).expect("count engine")
    }

    /// An MI engine; continuous aggregate attributes are binned into 10
    /// equi-width bins over a generous range.
    pub fn mi_engine(&self) -> Engine<GenCofactor> {
        apps::mi_engine(self.tree.clone(), &self.default_binnings()).expect("mi engine")
    }

    /// Default equi-width binnings for the continuous aggregate attributes,
    /// sized to the value ranges produced by the synthetic generators.
    pub fn default_binnings(&self) -> HashMap<usize, BinSpec> {
        let layout = fivm_core::AggregateLayout::of(&self.spec);
        let mut bins = HashMap::new();
        for (pos, &v) in layout.vars.iter().enumerate() {
            if layout.kinds[pos].is_continuous() {
                let spec = match layout.names[pos].as_str() {
                    "inventoryunits" => BinSpec::new(0.0, 500.0, 10),
                    "unitsales" => BinSpec::new(0.0, 80.0, 10),
                    "price" => BinSpec::new(0.0, 80.0, 10),
                    "avghhi" => BinSpec::new(30_000.0, 120_000.0, 10),
                    "competitordistance" => BinSpec::new(0.0, 40.0, 10),
                    "population" => BinSpec::new(5_000.0, 200_000.0, 10),
                    "medianage" => BinSpec::new(25.0, 55.0, 10),
                    "maxtemp" => BinSpec::new(-15.0, 40.0, 10),
                    "mintemp" => BinSpec::new(-15.0, 20.0, 10),
                    "transactions" => BinSpec::new(200.0, 4_000.0, 10),
                    "oilprice" => BinSpec::new(20.0, 80.0, 10),
                    _ => BinSpec::new(0.0, 1_000.0, 10),
                };
                bins.insert(v, spec);
            }
        }
        bins
    }
}

/// Timing result of replaying an update stream through a maintenance
/// strategy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Throughput {
    /// Total wall-clock seconds spent applying updates.
    pub seconds: f64,
    /// Number of individual updates applied.
    pub updates: usize,
}

impl Throughput {
    /// Updates per second.
    pub fn updates_per_second(&self) -> f64 {
        if self.seconds == 0.0 {
            f64::INFINITY
        } else {
            self.updates as f64 / self.seconds
        }
    }
}

/// Measures the wall-clock time of applying every update bulk through a
/// callback (the callback applies one bulk and may also read the result, to
/// mirror the refresh-per-bulk behaviour of the demo).
pub fn measure<F: FnMut(&Update)>(updates: &[Update], mut apply: F) -> Throughput {
    let start = Instant::now();
    for bulk in updates {
        apply(bulk);
    }
    Throughput {
        seconds: start.elapsed().as_secs_f64(),
        updates: updates.iter().map(Update::len).sum(),
    }
}

/// One measured F-IVM configuration, as recorded in `BENCH_ivm.json`.
///
/// The JSON file gives every future perf PR a machine-readable baseline:
/// rows/second plus the engine's own work counters (delta entries and ring
/// operations), so a regression in either wall-clock or algorithmic work
/// is visible from the artifact alone.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Dataset name (`Retailer`, `Favorita`).
    pub dataset: String,
    /// Application / ring (`COUNT`, `COVAR`, `MI`).
    pub app: String,
    /// Updates per bulk in the replayed stream.
    pub bulk_size: usize,
    /// Individual updates applied.
    pub updates: usize,
    /// Wall-clock seconds spent applying them.
    pub seconds: f64,
    /// Delta entries pushed into views (update phase only).
    pub delta_entries: usize,
    /// Ring additions (update phase only).
    pub ring_adds: usize,
    /// Ring multiplications (update phase only).
    pub ring_muls: usize,
}

impl BenchRecord {
    /// Updates (rows) per second.
    pub fn rows_per_sec(&self) -> f64 {
        if self.seconds == 0.0 {
            f64::INFINITY
        } else {
            self.updates as f64 / self.seconds
        }
    }
}

/// Writes the benchmark records as a `BENCH_*.json` artifact (hand-rolled
/// JSON — the build environment has no serde).
pub fn write_bench_json(path: &str, records: &[BenchRecord]) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"benchmark\": \"ivm_throughput\",\n  \"workloads\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"dataset\": \"{}\", \"app\": \"{}\", \"bulk_size\": {}, ",
                "\"updates\": {}, \"seconds\": {:.6}, \"rows_per_sec\": {:.1}, ",
                "\"delta_entries\": {}, \"ring_adds\": {}, \"ring_muls\": {}}}{}\n"
            ),
            r.dataset,
            r.app,
            r.bulk_size,
            r.updates,
            r.seconds,
            r.rows_per_sec(),
            r.delta_entries,
            r.ring_adds,
            r.ring_muls,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Formats a ratio like `123.4x` with a sensible precision.
pub fn format_speedup(ratio: f64) -> String {
    if ratio >= 100.0 {
        format!("{ratio:.0}x")
    } else if ratio >= 10.0 {
        format!("{ratio:.1}x")
    } else {
        format!("{ratio:.2}x")
    }
}

/// Prints a simple aligned table: a header row followed by data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_retailer() -> Workload {
        Workload::retailer(
            fivm_data::RetailerConfig::tiny(),
            fivm_data::StreamConfig {
                bulks: 2,
                bulk_size: 20,
                delete_fraction: 0.2,
                seed: 1,
            },
            true,
        )
    }

    #[test]
    fn workload_construction_and_engines() {
        let w = tiny_retailer();
        assert_eq!(w.dataset.name(), "Retailer");
        assert_eq!(w.total_updates(), 40);
        let mut e = w.covar_engine();
        e.load_database(&w.database).unwrap();
        assert!(e.result().count() > 0.0);
        let mut c = w.count_engine();
        c.load_database(&w.database).unwrap();
        assert!(c.result() > 0);
        let mut mi = w.mi_engine();
        mi.load_database(&w.database).unwrap();
        assert!(mi.result().count() > 0.0);
    }

    #[test]
    fn favorita_workload_and_gen_covar() {
        let w = Workload::favorita(
            fivm_data::FavoritaConfig::tiny(),
            fivm_data::StreamConfig {
                bulks: 1,
                bulk_size: 10,
                delete_fraction: 0.0,
                seed: 2,
            },
        );
        assert_eq!(w.dataset.name(), "Favorita");
        let mut e = w.gen_covar_engine();
        e.load_database(&w.database).unwrap();
        assert!(e.result().count() > 0.0);
    }

    #[test]
    fn measurement_and_formatting_helpers() {
        let w = tiny_retailer();
        let mut engine = w.count_engine();
        engine.load_database(&w.database).unwrap();
        let t = measure(&w.updates, |bulk| {
            engine.apply_update(bulk).unwrap();
        });
        assert_eq!(t.updates, 40);
        assert!(t.updates_per_second() > 0.0);
        assert_eq!(format_speedup(250.0), "250x");
        assert_eq!(format_speedup(12.34), "12.3x");
        assert_eq!(format_speedup(2.5), "2.50x");
        print_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
    }
}
