//! Seeded differential suite for the columnar batch kernel: the same
//! update streams replayed through engines forced to `KernelMode::Scalar`
//! (per-row lift dispatch) and `KernelMode::Columnar` (sorted run
//! detection + batch-fused lifts), results compared at the root.
//!
//! # Exactness
//!
//! The columnar kernel sorts a level's delta by `(hash, key)` with the
//! arrival index as tie-break, so rows sharing a key accumulate in the
//! same order as the scalar path; the only re-association is inside the
//! *batch-fused continuous* lift, which folds a run into horizontal sums
//! `(Σw, Σw·x, Σw·x²)`.  Hence, exactly as in the sharded and DAG
//! differential suites:
//!
//! * COUNT (`i64`) and MI (integer-count `f64`s in binned categorical
//!   tables) are asserted **bit-for-bit**;
//! * COVAR over *quantized* streams (every continuous value an integer)
//!   is exact in any addition order, so it is asserted bit-for-bit too;
//! * COVAR over raw float streams is asserted to a tight relative
//!   tolerance (1e-9).
//!
//! All streams carry deletes (`delete_fraction > 0`), so the kernel's
//! negative-multiplicity and cancel-to-zero paths are exercised; a final
//! `+pulse/-pulse` replay pins the steady-state hash-once contract
//! (`rehashes == 0`, `ring_rehashes == 0`) in **both** modes.

use fivm_bench::Workload;
use fivm_common::Value;
use fivm_core::{Engine, KernelMode};
use fivm_dag::{QueryKind, QueryRegistry};
use fivm_data::{FavoritaConfig, RetailerConfig, StreamConfig};
use fivm_relation::{BaseTable, Database, Relation, Tuple, Update};
use fivm_ring::{ApproxEq, Ring};

// ---------------------------------------------------------------- helpers

fn quantize_value(v: &Value) -> Value {
    match v {
        Value::Double(d) => Value::double(d.get().round()),
        other => other.clone(),
    }
}

fn quantize_tuple(t: &[Value]) -> Tuple {
    t.iter().map(quantize_value).collect::<Vec<_>>().into_boxed_slice()
}

fn quantize_updates(updates: &[Update]) -> Vec<Update> {
    updates
        .iter()
        .map(|u| {
            Update::with_multiplicities(
                u.table.clone(),
                u.rows.iter().map(|(r, m)| (quantize_tuple(r), *m)).collect(),
            )
        })
        .collect()
}

fn quantize_database(db: &Database) -> Database {
    let mut out = Database::new();
    for table in db.tables() {
        let mut t = BaseTable::new(table.name.clone(), table.schema.clone());
        for (row, mult) in &table.rows {
            t.push_with_multiplicity(quantize_tuple(row), *mult);
        }
        out.add_table(t).expect("names stay unique");
    }
    out
}

#[derive(Clone, Copy)]
enum Agreement {
    Exact,
    Approx(f64),
}

fn sorted_entries<R: Ring>(rel: &Relation<R>) -> Vec<(Tuple, R)> {
    let mut entries: Vec<(Tuple, R)> = rel.iter().map(|(k, p)| (k.clone(), p.clone())).collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries
}

fn assert_agrees<R: Ring + ApproxEq>(
    columnar: &Relation<R>,
    scalar: &Relation<R>,
    agreement: Agreement,
    ctx: &str,
) {
    let columnar = sorted_entries(columnar);
    let scalar = sorted_entries(scalar);
    assert_eq!(
        columnar.len(),
        scalar.len(),
        "{ctx}: result cardinality diverged between kernels"
    );
    for ((ck, cp), (sk, sp)) in columnar.iter().zip(scalar.iter()) {
        assert_eq!(ck, sk, "{ctx}: decoded keys diverged between kernels");
        match agreement {
            Agreement::Exact => assert!(
                cp == sp,
                "{ctx}: payload not bit-for-bit equal at key {ck:?}"
            ),
            Agreement::Approx(tol) => assert!(
                cp.approx_eq(sp, tol),
                "{ctx}: payload outside tolerance at key {ck:?}"
            ),
        }
    }
}

/// Loads both engines and replays the stream through both, the left one
/// forced to the scalar kernel and the right one to the columnar kernel
/// (mode is set *before* the initial load so the bulk path is columnar
/// too).
fn run_pair<R: Ring>(
    mut scalar: Engine<R>,
    mut columnar: Engine<R>,
    db: &Database,
    updates: &[Update],
) -> (Engine<R>, Engine<R>) {
    scalar.set_kernel_mode(KernelMode::Scalar);
    columnar.set_kernel_mode(KernelMode::Columnar);
    scalar.load_database(db).expect("scalar load");
    columnar.load_database(db).expect("columnar load");
    for u in updates {
        scalar.apply_update(u).expect("scalar update");
        columnar.apply_update(u).expect("columnar update");
    }
    (scalar, columnar)
}

/// A `+1`/`-1` pulse over fact rows the engines have already seen — the
/// steady-state probe from the DAG differential suite.  (A full stream
/// replay would not do: its deletes keep removing entries, and tombstone
/// compaction counts as a rehash in either kernel mode.)
fn steady_state_pulse(db: &Database, fact: &str) -> (Update, Update) {
    let rows: Vec<(Tuple, i64)> = db
        .table(fact)
        .expect("fact table exists")
        .rows
        .iter()
        .take(100)
        .map(|(r, _)| (r.clone(), 1))
        .collect();
    let plus = Update::with_multiplicities(fact, rows.clone());
    let minus =
        Update::with_multiplicities(fact, rows.iter().map(|(r, _)| (r.clone(), -1)).collect());
    (plus, minus)
}

/// Applies the pulse and asserts the hash-once contract held: no
/// view-table and no ring-interior rehash in either kernel mode.
fn assert_steady_state_rehash_free<R: Ring>(
    scalar: &mut Engine<R>,
    columnar: &mut Engine<R>,
    db: &Database,
    fact: &str,
    ctx: &str,
) {
    let (plus, minus) = steady_state_pulse(db, fact);
    for (engine, mode) in [(scalar, "scalar"), (columnar, "columnar")] {
        let before = engine.stats();
        engine.apply_update(&plus).expect("steady-state pulse");
        engine.apply_update(&minus).expect("steady-state pulse");
        let delta = engine.stats().delta_since(&before);
        assert_eq!(delta.rehashes, 0, "{ctx}: {mode} kernel rehashed a view in steady state");
        assert_eq!(
            delta.ring_rehashes, 0,
            "{ctx}: {mode} kernel rehashed a ring interior in steady state"
        );
    }
}

fn retailer_workload(continuous_only: bool) -> Workload {
    Workload::retailer(
        RetailerConfig {
            locations: 8,
            dates: 12,
            items: 16,
            zips: 4,
            inventory_density: 0.2,
            seed: 11,
        },
        StreamConfig {
            bulks: 6,
            bulk_size: 150,
            delete_fraction: 0.25,
            seed: 5,
        },
        continuous_only,
    )
}

fn favorita_workload() -> Workload {
    Workload::favorita(
        FavoritaConfig::tiny(),
        StreamConfig {
            bulks: 5,
            bulk_size: 120,
            delete_fraction: 0.25,
            seed: 9,
        },
    )
}

// ----------------------------------------------------------------- tests

/// COUNT on both datasets: integer ring, bit-for-bit in any order.
#[test]
fn count_columnar_matches_scalar_bit_for_bit() {
    for (name, w) in [
        ("Retailer", retailer_workload(true)),
        ("Favorita", favorita_workload()),
    ] {
        let (mut s, mut c) = run_pair(w.count_engine(), w.count_engine(), &w.database, &w.updates);
        assert_agrees(
            &c.result_relation(),
            &s.result_relation(),
            Agreement::Exact,
            &format!("{name}/COUNT"),
        );
        let fact = w.updates[0].table.clone();
        assert_steady_state_rehash_free(&mut s, &mut c, &w.database, &fact, &format!("{name}/COUNT"));
    }
}

/// Continuous COVAR (Cofactor ring) on the quantized Retailer stream:
/// integer-valued floats make the batch sums exact, so bit-for-bit.
#[test]
fn retailer_covar_quantized_is_bit_for_bit() {
    let w = retailer_workload(true);
    let db = quantize_database(&w.database);
    let updates = quantize_updates(&w.updates);
    let (mut s, mut c) = run_pair(w.covar_engine(), w.covar_engine(), &db, &updates);
    assert_agrees(
        &c.result_relation(),
        &s.result_relation(),
        Agreement::Exact,
        "Retailer/COVAR-quantized",
    );
    assert_steady_state_rehash_free(&mut s, &mut c, &db, &w.updates[0].table, "Retailer/COVAR-quantized");
}

/// Continuous COVAR on the raw float stream: the batch-fused continuous
/// lift re-associates the within-run sums, so tolerance, not identity.
#[test]
fn retailer_covar_raw_floats_agree_to_tolerance() {
    let w = retailer_workload(true);
    let (s, c) = run_pair(w.covar_engine(), w.covar_engine(), &w.database, &w.updates);
    assert_agrees(
        &c.result_relation(),
        &s.result_relation(),
        Agreement::Approx(1e-9),
        "Retailer/COVAR-raw",
    );
}

/// Generalized COVAR (mixed continuous/categorical) on quantized Favorita:
/// exercises the split GenCofactor representation's dense *and*
/// categorical batch channels; exact on integer-valued floats.
#[test]
fn favorita_gen_covar_quantized_is_bit_for_bit() {
    let w = favorita_workload();
    let db = quantize_database(&w.database);
    let updates = quantize_updates(&w.updates);
    let (mut s, mut c) = run_pair(w.gen_covar_engine(), w.gen_covar_engine(), &db, &updates);
    assert_agrees(
        &c.result_relation(),
        &s.result_relation(),
        Agreement::Exact,
        "Favorita/gen-COVAR-quantized",
    );
    assert_steady_state_rehash_free(&mut s, &mut c, &db, &w.updates[0].table, "Favorita/gen-COVAR-quantized");
}

/// Generalized COVAR on raw Favorita floats agrees to tolerance.
#[test]
fn favorita_gen_covar_raw_floats_agree_to_tolerance() {
    let w = favorita_workload();
    let (s, c) = run_pair(w.gen_covar_engine(), w.gen_covar_engine(), &w.database, &w.updates);
    assert_agrees(
        &c.result_relation(),
        &s.result_relation(),
        Agreement::Approx(1e-9),
        "Favorita/gen-COVAR-raw",
    );
}

/// MI on both datasets: after binning, all mass lives in categorical
/// tables with integer-count weights — bit-for-bit even on raw floats.
#[test]
fn mi_columnar_matches_scalar_bit_for_bit() {
    for (name, w) in [
        ("Retailer", retailer_workload(true)),
        ("Favorita", favorita_workload()),
    ] {
        let (mut s, mut c) = run_pair(w.mi_engine(), w.mi_engine(), &w.database, &w.updates);
        assert_agrees(
            &c.result_relation(),
            &s.result_relation(),
            Agreement::Exact,
            &format!("{name}/MI"),
        );
        let fact = w.updates[0].table.clone();
        assert_steady_state_rehash_free(&mut s, &mut c, &w.database, &fact, &format!("{name}/MI"));
    }
}

/// The DAG engine's shared propagation pass under both kernels: one
/// registry per mode, COUNT + gen-COVAR sharing the quantized Favorita
/// batches; results bit-for-bit, steady state rehash-free in both.
#[test]
fn dag_shared_pass_columnar_matches_scalar() {
    let w = favorita_workload();
    let db = quantize_database(&w.database);
    let updates = quantize_updates(&w.updates);

    let mut registries = Vec::new();
    for mode in [KernelMode::Scalar, KernelMode::Columnar] {
        let mut registry = QueryRegistry::new();
        registry.set_kernel_mode(mode);
        let count_id = registry
            .register(w.tree.clone(), QueryKind::Count, None)
            .expect("register count");
        let gen_id = registry
            .register(w.tree.clone(), QueryKind::GenCovar, None)
            .expect("register gen-covar");
        registry.load_database(&db).expect("load");
        for u in &updates {
            registry.apply_update(u).expect("update");
        }
        registries.push((registry, count_id, gen_id));
    }
    let (columnar, c_count, c_gen) = registries.pop().expect("columnar registry");
    let (scalar, s_count, s_gen) = registries.pop().expect("scalar registry");

    assert_agrees(
        &columnar.count_result_relation(c_count).unwrap(),
        &scalar.count_result_relation(s_count).unwrap(),
        Agreement::Exact,
        "Favorita/DAG-COUNT",
    );
    assert_agrees(
        &columnar.gen_result_relation(c_gen).unwrap(),
        &scalar.gen_result_relation(s_gen).unwrap(),
        Agreement::Exact,
        "Favorita/DAG-gen-COVAR-quantized",
    );

    let (plus, minus) = steady_state_pulse(&db, &updates[0].table);
    for (mut registry, mode) in [(scalar, "scalar"), (columnar, "columnar")] {
        let before = registry.stats();
        registry.apply_update(&plus).expect("steady-state pulse");
        registry.apply_update(&minus).expect("steady-state pulse");
        let after = registry.stats();
        assert_eq!(
            after.rehashes, before.rehashes,
            "DAG {mode} kernel rehashed a view in steady state"
        );
        assert_eq!(
            after.ring_rehashes, before.ring_rehashes,
            "DAG {mode} kernel rehashed a ring interior in steady state"
        );
    }
}
