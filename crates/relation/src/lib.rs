#![forbid(unsafe_code)]
//! Schemas, tuples and ring-payload relations for F-IVM.
//!
//! F-IVM generalizes relations to maps from key tuples to ring payloads: a
//! base table maps tuples to multiplicities (the `Z` ring) and materialized
//! views map group-by keys to aggregate payloads of the application's ring.
//! This crate provides:
//!
//! * [`Schema`]/[`Attribute`] — named, typed attribute lists,
//! * [`Tuple`] and projection helpers,
//! * [`Relation`] — the generic keyed map with union, natural join and
//!   marginalization operators (the building blocks of both the engine and
//!   the baselines),
//! * [`Database`], [`BaseTable`], [`Update`] — the dataset and update-stream
//!   representation shared by the engine, baselines and generators.

pub mod database;
pub mod relation;
pub mod schema;
pub mod tuple;

pub use database::{BaseTable, Database, Update};
pub use relation::Relation;
pub use schema::{AttrKind, Attribute, Schema};
pub use tuple::{project_tuple, tuple, Projection, Tuple};
