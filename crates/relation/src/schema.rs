//! Named, typed attribute lists.

use fivm_common::{FivmError, Result};

pub use fivm_common::AttrKind;

/// A named attribute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, unique within a schema.
    pub name: String,
    /// Continuous or categorical.
    pub kind: AttrKind,
}

impl Attribute {
    /// A continuous attribute.
    pub fn continuous(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            kind: AttrKind::Continuous,
        }
    }

    /// A categorical attribute.
    pub fn categorical(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            kind: AttrKind::Categorical,
        }
    }
}

/// An ordered list of attributes.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate attribute names.
    pub fn new(attrs: Vec<Attribute>) -> Result<Self> {
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].iter().any(|b| b.name == a.name) {
                return Err(FivmError::InvalidQuery(format!(
                    "duplicate attribute `{}` in schema",
                    a.name
                )));
            }
        }
        Ok(Schema { attrs })
    }

    /// Builds a schema from `(name, kind)` pairs; panics on duplicates
    /// (convenience for tests and generators).
    pub fn of(attrs: &[(&str, AttrKind)]) -> Self {
        Schema::new(
            attrs
                .iter()
                .map(|(n, k)| Attribute {
                    name: (*n).to_string(),
                    kind: *k,
                })
                .collect(),
        )
        .expect("invalid schema literal")
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The attributes in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// The position of an attribute by name.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// The attribute at a position.
    pub fn attr(&self, idx: usize) -> &Attribute {
        &self.attrs[idx]
    }

    /// The attribute names in order.
    pub fn names(&self) -> Vec<&str> {
        self.attrs.iter().map(|a| a.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_positions_and_arity() {
        let s = Schema::of(&[
            ("locn", AttrKind::Categorical),
            ("dateid", AttrKind::Categorical),
            ("inventoryunits", AttrKind::Continuous),
        ]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.position("dateid"), Some(1));
        assert_eq!(s.position("missing"), None);
        assert_eq!(s.attr(2).kind, AttrKind::Continuous);
        assert_eq!(s.names(), vec!["locn", "dateid", "inventoryunits"]);
    }

    #[test]
    fn duplicate_attributes_rejected() {
        let err = Schema::new(vec![
            Attribute::continuous("x"),
            Attribute::categorical("x"),
        ])
        .unwrap_err();
        assert_eq!(err.kind(), "invalid_query");
    }

    #[test]
    fn attribute_constructors() {
        assert_eq!(Attribute::continuous("a").kind, AttrKind::Continuous);
        assert_eq!(Attribute::categorical("b").kind, AttrKind::Categorical);
    }
}
