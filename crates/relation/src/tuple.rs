//! Tuples and projections.

use fivm_common::{Value, VarId};

/// A tuple of attribute values.  Boxed slices keep the footprint at two words
/// and avoid spare capacity, since tuples are stored by the millions as view
/// keys.
pub type Tuple = Box<[Value]>;

/// Builds a tuple from anything convertible to [`Value`].
///
/// ```
/// use fivm_relation::tuple;
/// let t = tuple([1i64.into(), fivm_common::Value::str("red")]);
/// assert_eq!(t.len(), 2);
/// ```
pub fn tuple<I: IntoIterator<Item = Value>>(values: I) -> Tuple {
    values.into_iter().collect::<Vec<_>>().into_boxed_slice()
}

/// Projects a tuple defined over `from_vars` onto `to_vars`.
///
/// Every variable in `to_vars` must appear in `from_vars`; the function
/// panics otherwise (projection lists are computed by the query compiler, so
/// a miss is a programming error).
///
/// This is a one-shot convenience that resolves positions and applies them
/// in one call.  Anything projecting repeatedly over the same variable
/// lists (a plan edge, a join fold) must build a [`Projection`] once and
/// reuse it — the position resolution is an `O(|from| · |to|)` scan that
/// has no business running per tuple.
pub fn project_tuple(tuple: &[Value], from_vars: &[VarId], to_vars: &[VarId]) -> Tuple {
    Projection::new(from_vars, to_vars).apply(tuple)
}

/// Precomputed projection positions: maps `to_vars` to their positions in
/// `from_vars`, so repeated projections avoid the linear search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Projection {
    positions: Vec<usize>,
}

impl Projection {
    /// Builds a projection plan from `from_vars` onto `to_vars`.
    pub fn new(from_vars: &[VarId], to_vars: &[VarId]) -> Self {
        let positions = to_vars
            .iter()
            .map(|v| {
                from_vars
                    .iter()
                    .position(|f| f == v)
                    .unwrap_or_else(|| panic!("variable {v} not present in source variables"))
            })
            .collect();
        Projection { positions }
    }

    /// Applies the projection to a tuple over `from_vars`.
    #[inline]
    pub fn apply(&self, tuple: &[Value]) -> Tuple {
        self.positions
            .iter()
            .map(|&p| tuple[p].clone())
            .collect::<Vec<_>>()
            .into_boxed_slice()
    }

    /// The source positions selected by this projection.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_builder_collects_values() {
        let t = tuple([Value::int(1), Value::str("a"), Value::double(2.5)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t[0], Value::int(1));
    }

    #[test]
    fn projection_reorders_and_drops() {
        let from = [10usize, 20, 30];
        let t = tuple([Value::int(1), Value::int(2), Value::int(3)]);
        let p = project_tuple(&t, &from, &[30, 10]);
        assert_eq!(&*p, &[Value::int(3), Value::int(1)]);
        let empty = project_tuple(&t, &from, &[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn precomputed_projection_matches_ad_hoc() {
        let from = [0usize, 5, 9];
        let plan = Projection::new(&from, &[9, 0]);
        let t = tuple([Value::str("x"), Value::int(7), Value::double(1.0)]);
        assert_eq!(plan.apply(&t), project_tuple(&t, &from, &[9, 0]));
        assert_eq!(plan.positions(), &[2, 0]);
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn projection_panics_on_missing_variable() {
        let _ = project_tuple(&tuple([Value::int(1)]), &[0], &[1]);
    }
}
