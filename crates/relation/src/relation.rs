//! The generic keyed relation: a map from key tuples to ring payloads.

use crate::tuple::{Projection, Tuple};
use fivm_common::{FxHashMap, Value, VarId};
use fivm_ring::Ring;

/// A relation mapping key tuples (over an ordered list of query variables)
/// to payloads from a ring `R`.
///
/// * Base tables are `Relation<i64>` — payloads are tuple multiplicities.
/// * Materialized views are `Relation<R>` for the application ring `R`.
/// * Deltas are plain relations whose payloads may be negative.
///
/// Keys whose payload becomes exactly zero are removed, so the map only ever
/// holds "present" keys.
#[derive(Clone, Debug)]
pub struct Relation<R: Ring> {
    vars: Vec<VarId>,
    data: FxHashMap<Tuple, R>,
}

impl<R: Ring> Relation<R> {
    /// An empty relation keyed by the given variables.
    pub fn new(vars: Vec<VarId>) -> Self {
        Relation {
            vars,
            data: FxHashMap::default(),
        }
    }

    /// An empty relation with pre-allocated capacity.
    pub fn with_capacity(vars: Vec<VarId>, cap: usize) -> Self {
        Relation {
            vars,
            data: FxHashMap::with_capacity_and_hasher(cap, Default::default()),
        }
    }

    /// Builds a relation from `(tuple, payload)` pairs, summing duplicates.
    pub fn from_entries<I>(vars: Vec<VarId>, entries: I) -> Self
    where
        I: IntoIterator<Item = (Tuple, R)>,
    {
        let mut rel = Relation::new(vars);
        for (t, p) in entries {
            rel.add(t, p);
        }
        rel
    }

    /// The key variables, in column order.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// Number of key columns.
    pub fn arity(&self) -> usize {
        self.vars.len()
    }

    /// Number of keys with non-zero payload.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the relation has no keys.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The payload of a key, if present.
    pub fn get(&self, key: &[Value]) -> Option<&R> {
        self.data.get(key)
    }

    /// Adds `payload` to the entry for `key`, removing the entry if the
    /// result is zero.
    pub fn add(&mut self, key: Tuple, payload: R) {
        debug_assert_eq!(key.len(), self.vars.len(), "tuple arity mismatch");
        if payload.is_zero() {
            return;
        }
        use std::collections::hash_map::Entry;
        match self.data.entry(key) {
            Entry::Vacant(v) => {
                v.insert(payload);
            }
            Entry::Occupied(mut o) => {
                o.get_mut().add_assign(&payload);
                if o.get().is_zero() {
                    o.remove();
                }
            }
        }
    }

    /// Merges another relation into this one (payload-wise union).  Both
    /// relations must be keyed by the same variables in the same order.
    pub fn union_add(&mut self, other: &Relation<R>) {
        debug_assert_eq!(self.vars, other.vars, "union over mismatched variables");
        for (k, p) in &other.data {
            self.add(k.clone(), p.clone());
        }
    }

    /// Iterates over `(key, payload)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &R)> + '_ {
        self.data.iter()
    }

    /// Applies a function to every payload, producing a relation over a
    /// possibly different ring.  Zero results are dropped.
    pub fn map_payload<S: Ring>(&self, f: impl Fn(&Tuple, &R) -> S) -> Relation<S> {
        let mut out = Relation::with_capacity(self.vars.clone(), self.len());
        for (k, p) in &self.data {
            out.add(k.clone(), f(k, p));
        }
        out
    }

    /// The additive inverse of every payload (used to encode deletions).
    pub fn neg(&self) -> Relation<R> {
        self.map_payload(|_, p| p.neg())
    }

    /// Scales every payload by an integer multiplicity.
    pub fn scale_int(&self, k: i64) -> Relation<R> {
        self.map_payload(|_, p| p.scale_int(k))
    }

    /// Sums all payloads (the "grand total" aggregate).
    pub fn total(&self) -> R {
        let mut acc = R::zero();
        for p in self.data.values() {
            acc.add_assign(p);
        }
        acc
    }

    /// Marginalizes the relation onto a subset of its variables: keys are
    /// projected onto `keep_vars` and payloads of collapsing keys are summed.
    pub fn marginalize(&self, keep_vars: &[VarId]) -> Relation<R> {
        let proj = Projection::new(&self.vars, keep_vars);
        let mut out = Relation::with_capacity(keep_vars.to_vec(), self.len());
        for (k, p) in &self.data {
            out.add(proj.apply(k), p.clone());
        }
        out
    }

    /// Natural join: matches keys on the shared variables, multiplies
    /// payloads, and returns a relation over `self.vars ∪ other.vars`
    /// (self's order first, then other's non-shared variables).
    pub fn natural_join(&self, other: &Relation<R>) -> Relation<R> {
        let shared: Vec<VarId> = self
            .vars
            .iter()
            .copied()
            .filter(|v| other.vars.contains(v))
            .collect();
        let other_extra: Vec<VarId> = other
            .vars
            .iter()
            .copied()
            .filter(|v| !shared.contains(v))
            .collect();
        let mut out_vars = self.vars.clone();
        out_vars.extend(other_extra.iter().copied());

        // Index the smaller side by the shared variables.
        let self_proj = Projection::new(&self.vars, &shared);
        let other_proj = Projection::new(&other.vars, &shared);
        let other_extra_proj = Projection::new(&other.vars, &other_extra);

        let mut index: FxHashMap<Tuple, Vec<(&Tuple, &R)>> = FxHashMap::default();
        for (k, p) in &other.data {
            index.entry(other_proj.apply(k)).or_default().push((k, p));
        }

        let mut out = Relation::new(out_vars);
        for (k, p) in &self.data {
            let probe = self_proj.apply(k);
            if let Some(matches) = index.get(&probe) {
                for (ok, op) in matches {
                    let mut key: Vec<Value> = k.to_vec();
                    key.extend(other_extra_proj.apply(ok).iter().cloned());
                    out.add(key.into_boxed_slice(), p.mul(op));
                }
            }
        }
        out
    }
}

impl<R: Ring> PartialEq for Relation<R> {
    fn eq(&self, other: &Self) -> bool {
        self.vars == other.vars && self.data == other.data
    }
}

impl<R: Ring> Default for Relation<R> {
    fn default() -> Self {
        Relation::new(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::tuple;

    fn t(vals: &[i64]) -> Tuple {
        tuple(vals.iter().map(|&v| Value::int(v)))
    }

    #[test]
    fn add_accumulates_and_removes_zero() {
        let mut r: Relation<i64> = Relation::new(vec![0]);
        r.add(t(&[1]), 2);
        r.add(t(&[1]), 3);
        assert_eq!(r.get(&t(&[1])), Some(&5));
        r.add(t(&[1]), -5);
        assert_eq!(r.get(&t(&[1])), None);
        assert!(r.is_empty());
        r.add(t(&[2]), 0);
        assert!(r.is_empty());
    }

    #[test]
    fn union_add_merges() {
        let mut a: Relation<i64> = Relation::from_entries(vec![0], [(t(&[1]), 1), (t(&[2]), 2)]);
        let b: Relation<i64> = Relation::from_entries(vec![0], [(t(&[2]), -2), (t(&[3]), 5)]);
        a.union_add(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(&t(&[1])), Some(&1));
        assert_eq!(a.get(&t(&[3])), Some(&5));
        assert_eq!(a.get(&t(&[2])), None);
    }

    #[test]
    fn marginalize_sums_collapsed_keys() {
        // Relation over (A=0, B=1): marginalize onto A.
        let r: Relation<i64> = Relation::from_entries(
            vec![0, 1],
            [(t(&[1, 10]), 1), (t(&[1, 20]), 2), (t(&[2, 10]), 4)],
        );
        let m = r.marginalize(&[0]);
        assert_eq!(m.vars(), &[0]);
        assert_eq!(m.get(&t(&[1])), Some(&3));
        assert_eq!(m.get(&t(&[2])), Some(&4));
        let empty_key = r.marginalize(&[]);
        assert_eq!(empty_key.get(&t(&[])), Some(&7));
    }

    #[test]
    fn natural_join_multiplies_payloads() {
        // R(A, B) join S(A, C) on A.
        let r: Relation<i64> = Relation::from_entries(
            vec![0, 1],
            [(t(&[1, 10]), 2), (t(&[2, 20]), 3)],
        );
        let s: Relation<i64> = Relation::from_entries(
            vec![0, 2],
            [(t(&[1, 100]), 5), (t(&[1, 200]), 7), (t(&[3, 300]), 11)],
        );
        let j = r.natural_join(&s);
        assert_eq!(j.vars(), &[0, 1, 2]);
        assert_eq!(j.len(), 2);
        assert_eq!(j.get(&t(&[1, 10, 100])), Some(&10));
        assert_eq!(j.get(&t(&[1, 10, 200])), Some(&14));
    }

    #[test]
    fn join_without_shared_vars_is_cartesian_product() {
        let r: Relation<i64> = Relation::from_entries(vec![0], [(t(&[1]), 2), (t(&[2]), 3)]);
        let s: Relation<i64> = Relation::from_entries(vec![1], [(t(&[10]), 5)]);
        let j = r.natural_join(&s);
        assert_eq!(j.len(), 2);
        assert_eq!(j.get(&t(&[1, 10])), Some(&10));
        assert_eq!(j.get(&t(&[2, 10])), Some(&15));
    }

    #[test]
    fn map_payload_and_totals() {
        let r: Relation<i64> = Relation::from_entries(vec![0], [(t(&[1]), 2), (t(&[2]), -2)]);
        assert_eq!(r.total(), 0);
        let doubled = r.scale_int(2);
        assert_eq!(doubled.get(&t(&[1])), Some(&4));
        let negated = r.neg();
        assert_eq!(negated.get(&t(&[2])), Some(&2));
        let as_floats: Relation<f64> = r.map_payload(|_, p| *p as f64);
        assert_eq!(as_floats.get(&t(&[1])), Some(&2.0));
    }

    #[test]
    fn insert_then_delete_restores_empty_state() {
        let mut r: Relation<i64> = Relation::new(vec![0, 1]);
        let rows = [(t(&[1, 2]), 1), (t(&[3, 4]), 2), (t(&[5, 6]), 1)];
        for (k, m) in &rows {
            r.add(k.clone(), *m);
        }
        assert_eq!(r.len(), 3);
        for (k, m) in &rows {
            r.add(k.clone(), -m);
        }
        assert!(r.is_empty());
    }
}
