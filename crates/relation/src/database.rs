//! Databases, base tables and update streams.
//!
//! This is the exchange format between the dataset generators
//! (`fivm-data`), the F-IVM engine (`fivm-core`) and the baselines
//! (`fivm-baselines`): plain named tables with rows and multiplicities, plus
//! per-relation update batches.

use crate::schema::Schema;
use crate::tuple::Tuple;
use fivm_common::{FivmError, RelId, Result};

/// A named base table with rows and multiplicities.
#[derive(Clone, Debug)]
pub struct BaseTable {
    /// Table name, unique within a database.
    pub name: String,
    /// The table's schema.
    pub schema: Schema,
    /// Rows with multiplicities (inserts are positive).
    pub rows: Vec<(Tuple, i64)>,
}

impl BaseTable {
    /// An empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        BaseTable {
            name: name.into(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Appends a row with multiplicity 1; panics if the arity mismatches.
    pub fn push(&mut self, row: Tuple) {
        self.push_with_multiplicity(row, 1);
    }

    /// Appends a row with an explicit multiplicity.
    pub fn push_with_multiplicity(&mut self, row: Tuple, multiplicity: i64) {
        assert_eq!(
            row.len(),
            self.schema.arity(),
            "row arity {} does not match schema arity {} of table {}",
            row.len(),
            self.schema.arity(),
            self.name
        );
        self.rows.push((row, multiplicity));
    }

    /// Number of stored rows (not collapsed by multiplicity).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A collection of named base tables.
#[derive(Clone, Debug, Default)]
pub struct Database {
    tables: Vec<BaseTable>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Adds a table, rejecting duplicate names.
    pub fn add_table(&mut self, table: BaseTable) -> Result<RelId> {
        if self.tables.iter().any(|t| t.name == table.name) {
            return Err(FivmError::InvalidQuery(format!(
                "duplicate table name `{}`",
                table.name
            )));
        }
        self.tables.push(table);
        Ok(self.tables.len() - 1)
    }

    /// The tables in insertion order.
    pub fn tables(&self) -> &[BaseTable] {
        &self.tables
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Option<&BaseTable> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Looks up a table id by name.
    pub fn table_id(&self, name: &str) -> Option<RelId> {
        self.tables.iter().position(|t| t.name == name)
    }

    /// Mutable access to a table by name.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut BaseTable> {
        self.tables.iter_mut().find(|t| t.name == name)
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the database has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(BaseTable::len).sum()
    }
}

/// A batch of changes to a single base table.
///
/// Positive multiplicities are inserts, negative multiplicities are deletes —
/// exactly the encoding the paper uses for the `Z` ring and, through
/// [`fivm_ring::Ring::scale_int`], for every other ring.
#[derive(Clone, Debug)]
pub struct Update {
    /// The table being updated, by name.
    pub table: String,
    /// The changed rows with signed multiplicities.
    pub rows: Vec<(Tuple, i64)>,
}

impl Update {
    /// An update that inserts the given rows (multiplicity +1 each).
    pub fn inserts(table: impl Into<String>, rows: Vec<Tuple>) -> Self {
        Update {
            table: table.into(),
            rows: rows.into_iter().map(|r| (r, 1)).collect(),
        }
    }

    /// An update that deletes the given rows (multiplicity -1 each).
    pub fn deletes(table: impl Into<String>, rows: Vec<Tuple>) -> Self {
        Update {
            table: table.into(),
            rows: rows.into_iter().map(|r| (r, -1)).collect(),
        }
    }

    /// An update with explicit signed multiplicities.
    pub fn with_multiplicities(table: impl Into<String>, rows: Vec<(Tuple, i64)>) -> Self {
        Update {
            table: table.into(),
            rows,
        }
    }

    /// Number of changed rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the update is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The inverse update (deletes become inserts and vice versa); applying
    /// an update followed by its inverse leaves every view unchanged.
    pub fn inverse(&self) -> Update {
        Update {
            table: self.table.clone(),
            rows: self.rows.iter().map(|(t, m)| (t.clone(), -m)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrKind, Schema};
    use crate::tuple::tuple;
    use fivm_common::Value;

    fn schema2() -> Schema {
        Schema::of(&[("a", AttrKind::Categorical), ("b", AttrKind::Continuous)])
    }

    #[test]
    fn base_table_push_checks_arity() {
        let mut t = BaseTable::new("R", schema2());
        t.push(tuple([Value::int(1), Value::double(2.0)]));
        t.push_with_multiplicity(tuple([Value::int(2), Value::double(3.0)]), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn base_table_rejects_wrong_arity() {
        let mut t = BaseTable::new("R", schema2());
        t.push(tuple([Value::int(1)]));
    }

    #[test]
    fn database_lookup_and_duplicates() {
        let mut db = Database::new();
        let r_id = db.add_table(BaseTable::new("R", schema2())).unwrap();
        assert_eq!(r_id, 0);
        assert!(db.add_table(BaseTable::new("R", schema2())).is_err());
        db.add_table(BaseTable::new("S", schema2())).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.table_id("S"), Some(1));
        assert!(db.table("missing").is_none());
        db.table_mut("R")
            .unwrap()
            .push(tuple([Value::int(1), Value::double(0.5)]));
        assert_eq!(db.total_rows(), 1);
        assert!(!db.is_empty());
    }

    #[test]
    fn updates_and_inverse() {
        let u = Update::inserts("R", vec![tuple([Value::int(1)]), tuple([Value::int(2)])]);
        assert_eq!(u.len(), 2);
        assert!(!u.is_empty());
        assert!(u.rows.iter().all(|(_, m)| *m == 1));
        let d = Update::deletes("R", vec![tuple([Value::int(1)])]);
        assert_eq!(d.rows[0].1, -1);
        let inv = u.inverse();
        assert!(inv.rows.iter().all(|(_, m)| *m == -1));
        let mixed = Update::with_multiplicities("R", vec![(tuple([Value::int(5)]), 3)]);
        assert_eq!(mixed.inverse().rows[0].1, -3);
    }
}
