//! The shard worker: one thread owning one engine, driven by a command
//! channel in strict request/reply lockstep.
//!
//! The coordinator sends every worker the same *number* of commands per
//! operation (batches may be empty) and collects exactly one reply each,
//! so the channels never hold more than one in-flight reply per worker and
//! shard stats stay comparable (`updates_applied` counts batches on every
//! shard).

use fivm_common::{Dict, RelId, Result};
use fivm_core::{Engine, EngineStats, UpdateOutcome};
use fivm_relation::{Relation, Schema, Tuple};
use fivm_ring::Ring;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// A command from the coordinator to one shard.  Commands carry raw rows
/// only — never ring values or encoded keys — so one definition serves
/// every ring.
pub(crate) enum Cmd {
    /// Bind a relation to a table layout (mirrors `Engine::bind_table`).
    Bind { rel: RelId, schema: Schema },
    /// Apply this shard's slice of an update batch (may be empty).
    Apply { rel: RelId, rows: Vec<(Tuple, i64)> },
    /// Report the scalar query result (product of root views).
    Result,
    /// Report the query result as a decoded relation.
    ResultRelation,
    /// Report the engine's work counters.
    Stats,
    /// Report the number of stored view entries.
    ViewEntries,
    /// Exit the worker loop.
    Shutdown,
}

/// A reply from one shard; variants correspond 1:1 to [`Cmd`].
///
/// Result replies attach a snapshot of the shard's dictionary **iff** the
/// ring carries dictionary-local words (`Ring::needs_rekey`): the
/// coordinator rekeys the partial into its own dictionary before merging.
/// Encoded words themselves never travel interpreted — the dictionary that
/// produced them rides along.
pub(crate) enum Reply<R: Ring> {
    Bound(Result<()>),
    Outcome(Result<UpdateOutcome>),
    Result(R, Option<Dict>),
    ResultRelation(Relation<R>, Option<Dict>),
    Stats(EngineStats),
    ViewEntries(usize),
}

/// Handle to one shard: its command/reply channels and the thread.
pub(crate) struct Worker<R: Ring> {
    cmd: Sender<Cmd>,
    reply: Receiver<Reply<R>>,
    handle: Option<JoinHandle<()>>,
}

impl<R: Ring> Worker<R> {
    /// Moves an engine onto a fresh worker thread.
    pub(crate) fn spawn(shard: usize, engine: Engine<R>) -> Worker<R> {
        let (cmd_tx, cmd_rx) = channel::<Cmd>();
        let (reply_tx, reply_rx) = channel::<Reply<R>>();
        let handle = std::thread::Builder::new()
            .name(format!("fivm-shard-{shard}"))
            .spawn(move || worker_loop(engine, cmd_rx, reply_tx))
            .expect("failed to spawn shard worker thread");
        Worker {
            cmd: cmd_tx,
            reply: reply_rx,
            handle: Some(handle),
        }
    }

    /// Sends one command.  Panics if the worker died (an engine panic on a
    /// worker is a programming error — e.g. a ring shape mismatch — and is
    /// surfaced on the coordinating thread rather than swallowed).
    pub(crate) fn send(&self, cmd: Cmd) {
        self.cmd
            .send(cmd)
            .expect("shard worker terminated unexpectedly");
    }

    fn recv(&self) -> Reply<R> {
        self.reply
            .recv()
            .expect("shard worker terminated unexpectedly")
    }

    pub(crate) fn recv_bound(&self) -> Result<()> {
        match self.recv() {
            Reply::Bound(r) => r,
            _ => unreachable!("shard worker protocol violation: expected Bound"),
        }
    }

    pub(crate) fn recv_outcome(&self) -> Result<UpdateOutcome> {
        match self.recv() {
            Reply::Outcome(r) => r,
            _ => unreachable!("shard worker protocol violation: expected Outcome"),
        }
    }

    pub(crate) fn recv_result(&self) -> (R, Option<Dict>) {
        match self.recv() {
            Reply::Result(r, d) => (r, d),
            _ => unreachable!("shard worker protocol violation: expected Result"),
        }
    }

    pub(crate) fn recv_relation(&self) -> (Relation<R>, Option<Dict>) {
        match self.recv() {
            Reply::ResultRelation(r, d) => (r, d),
            _ => unreachable!("shard worker protocol violation: expected ResultRelation"),
        }
    }

    pub(crate) fn recv_stats(&self) -> EngineStats {
        match self.recv() {
            Reply::Stats(s) => s,
            _ => unreachable!("shard worker protocol violation: expected Stats"),
        }
    }

    pub(crate) fn recv_view_entries(&self) -> usize {
        match self.recv() {
            Reply::ViewEntries(n) => n,
            _ => unreachable!("shard worker protocol violation: expected ViewEntries"),
        }
    }
}

impl<R: Ring> Drop for Worker<R> {
    fn drop(&mut self) {
        // Best-effort shutdown: the worker may already be gone (panicked).
        let _ = self.cmd.send(Cmd::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The shard's dictionary snapshot for a result reply — only taken for
/// rings whose values must be rekeyed across engines, and only when the
/// shard has interned any strings at all (an empty dictionary proves no
/// ring key can hold a dictionary-local word, so the clone is skipped —
/// the common case for integer-categorical workloads).
///
/// A non-empty dictionary over-approximates: view-layer string keys
/// intern into the same dictionary, so a schema with string *join* keys
/// but integer categories still pays the snapshot.  Deliberate: there is
/// no reliable cheap signal for "a string reached a ring key" (the
/// encoded lift path never touches the context), and a missed snapshot
/// would silently corrupt merged results.  Correctness over cleverness.
fn dict_snapshot<R: Ring>(engine: &Engine<R>) -> Option<Dict> {
    if !R::needs_rekey() || engine.ctx().with_dict(Dict::is_empty) {
        return None;
    }
    Some(engine.ctx().snapshot())
}

/// The per-shard event loop: one engine, commands in, replies out.
fn worker_loop<R: Ring>(mut engine: Engine<R>, cmds: Receiver<Cmd>, replies: Sender<Reply<R>>) {
    while let Ok(cmd) = cmds.recv() {
        let reply = match cmd {
            Cmd::Bind { rel, schema } => Reply::Bound(engine.bind_table(rel, &schema)),
            Cmd::Apply { rel, rows } => Reply::Outcome(engine.apply_rows(rel, rows)),
            Cmd::Result => Reply::Result(engine.result(), dict_snapshot(&engine)),
            Cmd::ResultRelation => {
                Reply::ResultRelation(engine.result_relation(), dict_snapshot(&engine))
            }
            Cmd::Stats => Reply::Stats(engine.stats()),
            Cmd::ViewEntries => Reply::ViewEntries(engine.total_view_entries()),
            Cmd::Shutdown => break,
        };
        if replies.send(reply).is_err() {
            // Coordinator dropped mid-operation; nothing left to serve.
            break;
        }
    }
}
