//! The shard worker: one thread owning one engine, driven by a command
//! channel in strict request/reply lockstep.
//!
//! The coordinator sends every worker the same *number* of commands per
//! operation (batches may be empty) and collects exactly one reply each,
//! so the channels never hold more than one in-flight reply per worker and
//! shard stats stay comparable (`updates_applied` counts batches on every
//! shard).
//!
//! Panic containment: each command runs under
//! [`std::panic::catch_unwind`].  A panicking command sends
//! [`Reply::Failed`] with the panic payload and then **exits the worker
//! loop** — a panic may leave the engine's views half-updated, so the
//! worker refuses to serve further commands rather than serve corrupt
//! state.  The coordinator maps the reply to
//! [`ShardError::WorkerPanicked`], poisons itself, and shuts the surviving
//! shards down cleanly (see [`crate::ShardedEngine`]).

use crate::error::{ShardError, ShardResult};
use fivm_common::{Dict, RelId};
use fivm_core::{Engine, EngineResult, EngineStats, UpdateOutcome};
use fivm_relation::{Relation, Schema, Tuple};
use fivm_ring::Ring;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// A command from the coordinator to one shard.  Commands carry raw rows
/// only — never ring values or encoded keys — so one definition serves
/// every ring.
pub(crate) enum Cmd {
    /// Bind a relation to a table layout (mirrors `Engine::bind_table`).
    Bind { rel: RelId, schema: Schema },
    /// Apply this shard's slice of an update batch (may be empty).
    Apply { rel: RelId, rows: Vec<(Tuple, i64)> },
    /// Report the scalar query result (product of root views).
    Result,
    /// Report the query result as a decoded relation.
    ResultRelation,
    /// Report the engine's work counters.
    Stats,
    /// Report the number of stored view entries.
    ViewEntries,
    /// Exit the worker loop.
    Shutdown,
}

/// A reply from one shard; variants correspond 1:1 to [`Cmd`], plus
/// [`Reply::Failed`], which any command may produce when the engine
/// panics while executing it.
///
/// Result replies attach a snapshot of the shard's dictionary **iff** the
/// ring carries dictionary-local words (`Ring::needs_rekey`): the
/// coordinator rekeys the partial into its own dictionary before merging.
/// Encoded words themselves never travel interpreted — the dictionary that
/// produced them rides along.
pub(crate) enum Reply<R: Ring> {
    Bound(EngineResult<()>),
    Outcome(EngineResult<UpdateOutcome>),
    Result(R, Option<Dict>),
    ResultRelation(Relation<R>, Option<Dict>),
    Stats(EngineStats),
    ViewEntries(usize),
    /// The command panicked inside the engine; the payload describes the
    /// panic.  The worker exits after sending this.
    Failed(String),
}

/// Handle to one shard: its command/reply channels and the thread.
pub(crate) struct Worker<R: Ring> {
    shard: usize,
    cmd: Sender<Cmd>,
    reply: Receiver<Reply<R>>,
    handle: Option<JoinHandle<()>>,
}

impl<R: Ring> Worker<R> {
    /// Moves an engine onto a fresh worker thread.
    pub(crate) fn spawn(shard: usize, engine: Engine<R>) -> Worker<R> {
        let (cmd_tx, cmd_rx) = channel::<Cmd>();
        let (reply_tx, reply_rx) = channel::<Reply<R>>();
        let handle = std::thread::Builder::new()
            .name(format!("fivm-shard-{shard}"))
            .spawn(move || worker_loop(engine, cmd_rx, reply_tx))
            .expect("failed to spawn shard worker thread");
        Worker {
            shard,
            cmd: cmd_tx,
            reply: reply_rx,
            handle: Some(handle),
        }
    }

    /// Sends one command; errors if the worker thread is gone.
    pub(crate) fn send(&self, cmd: Cmd) -> ShardResult<()> {
        self.cmd
            .send(cmd)
            .map_err(|_| ShardError::Disconnected { shard: self.shard })
    }

    /// Receives one reply, mapping worker death and in-worker panics to
    /// typed errors.
    fn recv(&self) -> ShardResult<Reply<R>> {
        match self.reply.recv() {
            Ok(Reply::Failed(detail)) => Err(ShardError::WorkerPanicked {
                shard: self.shard,
                detail,
            }),
            Ok(reply) => Ok(reply),
            Err(_) => Err(ShardError::Disconnected { shard: self.shard }),
        }
    }

    pub(crate) fn recv_bound(&self) -> ShardResult<EngineResult<()>> {
        match self.recv()? {
            Reply::Bound(r) => Ok(r),
            _ => unreachable!("shard worker protocol violation: expected Bound"),
        }
    }

    pub(crate) fn recv_outcome(&self) -> ShardResult<EngineResult<UpdateOutcome>> {
        match self.recv()? {
            Reply::Outcome(r) => Ok(r),
            _ => unreachable!("shard worker protocol violation: expected Outcome"),
        }
    }

    pub(crate) fn recv_result(&self) -> ShardResult<(R, Option<Dict>)> {
        match self.recv()? {
            Reply::Result(r, d) => Ok((r, d)),
            _ => unreachable!("shard worker protocol violation: expected Result"),
        }
    }

    pub(crate) fn recv_relation(&self) -> ShardResult<(Relation<R>, Option<Dict>)> {
        match self.recv()? {
            Reply::ResultRelation(r, d) => Ok((r, d)),
            _ => unreachable!("shard worker protocol violation: expected ResultRelation"),
        }
    }

    pub(crate) fn recv_stats(&self) -> ShardResult<EngineStats> {
        match self.recv()? {
            Reply::Stats(s) => Ok(s),
            _ => unreachable!("shard worker protocol violation: expected Stats"),
        }
    }

    pub(crate) fn recv_view_entries(&self) -> ShardResult<usize> {
        match self.recv()? {
            Reply::ViewEntries(n) => Ok(n),
            _ => unreachable!("shard worker protocol violation: expected ViewEntries"),
        }
    }
}

impl<R: Ring> Drop for Worker<R> {
    fn drop(&mut self) {
        // Best-effort shutdown: the worker may already be gone (panicked).
        let _ = self.cmd.send(Cmd::Shutdown);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The shard's dictionary snapshot for a result reply — only taken for
/// rings whose values must be rekeyed across engines, and only when the
/// shard has interned any strings at all (an empty dictionary proves no
/// ring key can hold a dictionary-local word, so the clone is skipped —
/// the common case for integer-categorical workloads).
///
/// A non-empty dictionary over-approximates: view-layer string keys
/// intern into the same dictionary, so a schema with string *join* keys
/// but integer categories still pays the snapshot.  Deliberate: there is
/// no reliable cheap signal for "a string reached a ring key" (the
/// encoded lift path never touches the context), and a missed snapshot
/// would silently corrupt merged results.  Correctness over cleverness.
fn dict_snapshot<R: Ring>(engine: &Engine<R>) -> Option<Dict> {
    if !R::needs_rekey() || engine.ctx().with_dict(Dict::is_empty) {
        return None;
    }
    Some(engine.ctx().snapshot())
}

/// Renders a `catch_unwind` payload: `panic!` with a string (or format)
/// yields that string; anything else gets a placeholder.
fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The per-shard event loop: one engine, commands in, replies out.  Each
/// command runs under `catch_unwind`; a panic produces one
/// [`Reply::Failed`] and terminates the loop (the engine may be left
/// half-updated, so it must not serve further commands).
fn worker_loop<R: Ring>(mut engine: Engine<R>, cmds: Receiver<Cmd>, replies: Sender<Reply<R>>) {
    while let Ok(cmd) = cmds.recv() {
        if matches!(cmd, Cmd::Shutdown) {
            break;
        }
        let attempt = catch_unwind(AssertUnwindSafe(|| match cmd {
            Cmd::Bind { rel, schema } => Reply::Bound(engine.bind_table(rel, &schema)),
            Cmd::Apply { rel, rows } => Reply::Outcome(engine.apply_rows(rel, rows)),
            Cmd::Result => Reply::Result(engine.result(), dict_snapshot(&engine)),
            Cmd::ResultRelation => {
                Reply::ResultRelation(engine.result_relation(), dict_snapshot(&engine))
            }
            Cmd::Stats => Reply::Stats(engine.stats()),
            Cmd::ViewEntries => Reply::ViewEntries(engine.total_view_entries()),
            Cmd::Shutdown => unreachable!("handled before catch_unwind"),
        }));
        let (reply, dying) = match attempt {
            Ok(reply) => (reply, false),
            Err(payload) => (Reply::Failed(panic_detail(payload)), true),
        };
        if replies.send(reply).is_err() || dying {
            // Coordinator dropped mid-operation, or the engine panicked:
            // nothing left to serve either way.
            break;
        }
    }
}
