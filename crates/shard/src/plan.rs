//! The shard plan: a query's partition metadata plus the shard count and
//! the row-routing hash.

use fivm_common::{FivmError, FxHasher, RelId, Result, Value, VarId};
use fivm_query::{PartitionPlan, RelationRouting, ViewTree};
use std::hash::{Hash, Hasher};

/// Deterministic, dictionary-independent hash of a raw value, used to route
/// rows to shards.
///
/// Routing must agree for equal values across the whole lifetime of a
/// deployment and across shards, so it hashes the *raw* [`Value`] (whose
/// `Hash` goes through the canonical `OrdF64` bits for doubles — `-0.0`
/// and every NaN route like their normalized forms, matching key
/// equality) with the unseeded Fx mixer.  Dictionary-encoded words are
/// unusable here: string ids are dictionary-local and each shard owns its
/// own `Dict`.
pub fn route_hash(v: &Value) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

/// A compiled sharding decision: which variable partitions the data, how
/// each relation's rows reach the shards, and how many shards there are.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    partition: PartitionPlan,
    num_shards: usize,
}

impl ShardPlan {
    /// Derives a plan for a view tree, choosing the partition variable
    /// automatically (prefer the variable-order root covering the most
    /// relations; see [`PartitionPlan::choose`]).
    pub fn new(tree: &ViewTree, num_shards: usize) -> Result<ShardPlan> {
        let partition = PartitionPlan::choose(tree.spec(), tree.vorder())?;
        Self::from_partition(partition, num_shards)
    }

    /// Derives a plan for an explicitly chosen partition variable.
    pub fn with_partition_variable(
        tree: &ViewTree,
        var: VarId,
        num_shards: usize,
    ) -> Result<ShardPlan> {
        let partition = PartitionPlan::for_variable(tree.spec(), var)?;
        Self::from_partition(partition, num_shards)
    }

    fn from_partition(partition: PartitionPlan, num_shards: usize) -> Result<ShardPlan> {
        if num_shards == 0 {
            return Err(FivmError::InvalidQuery(
                "a sharded engine needs at least one shard".into(),
            ));
        }
        Ok(ShardPlan {
            partition,
            num_shards,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The partition variable.
    pub fn partition_var(&self) -> VarId {
        self.partition.var()
    }

    /// Routing of one relation.
    pub fn routing(&self, rel: RelId) -> RelationRouting {
        self.partition.routing(rel)
    }

    /// The underlying per-relation partition metadata.
    pub fn partition(&self) -> &PartitionPlan {
        &self.partition
    }

    /// The shard owning a partition-variable value.
    #[inline]
    pub fn shard_of(&self, v: &Value) -> usize {
        (route_hash(v) % self.num_shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_query::spec::figure1_query;

    fn figure1_tree() -> ViewTree {
        let spec = figure1_query(false);
        let a = spec.var_id("A").unwrap();
        let c = spec.var_id("C").unwrap();
        let mut parents = vec![None; 4];
        parents[spec.var_id("B").unwrap()] = Some(a);
        parents[c] = Some(a);
        parents[spec.var_id("D").unwrap()] = Some(c);
        ViewTree::from_parent_vars(spec, &parents).unwrap()
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let plan = ShardPlan::new(&figure1_tree(), 4).unwrap();
        for i in 0..1000i64 {
            let v = Value::int(i);
            let s = plan.shard_of(&v);
            assert!(s < 4);
            assert_eq!(s, plan.shard_of(&Value::int(i)));
        }
    }

    #[test]
    fn every_shard_owns_some_keys() {
        let plan = ShardPlan::new(&figure1_tree(), 4).unwrap();
        let mut seen = [false; 4];
        for i in 0..64i64 {
            seen[plan.shard_of(&Value::int(i))] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 keys left a shard empty: {seen:?}");
    }

    #[test]
    fn doubles_route_by_canonical_bits() {
        let plan = ShardPlan::new(&figure1_tree(), 7).unwrap();
        assert_eq!(
            plan.shard_of(&Value::double(0.0)),
            plan.shard_of(&Value::double(-0.0))
        );
        assert_eq!(
            plan.shard_of(&Value::double(f64::NAN)),
            plan.shard_of(&Value::double(-f64::NAN))
        );
    }

    #[test]
    fn zero_shards_is_rejected() {
        assert!(ShardPlan::new(&figure1_tree(), 0).is_err());
    }

    #[test]
    fn explicit_partition_variable_is_honored() {
        let tree = figure1_tree();
        let c = tree.spec().var_id("C").unwrap();
        let plan = ShardPlan::with_partition_variable(&tree, c, 2).unwrap();
        assert_eq!(plan.partition_var(), c);
        assert_eq!(plan.partition().num_broadcast(), 1);
    }
}
