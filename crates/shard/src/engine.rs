//! The sharded engine: routing, dispatch and result merging.

use crate::error::{ShardError, ShardResult};
use crate::plan::ShardPlan;
use crate::worker::{Cmd, Worker};
use fivm_common::{Dict, FivmError, RelId, Result};
use fivm_core::{Engine, EngineError, EngineStats, ExecutionPlan, UpdateOutcome};
use fivm_query::{QuerySpec, RelationRouting, ViewTree};
use fivm_relation::{Database, Relation, Schema, Tuple, Update};
use fivm_ring::{LiftFn, Ring, RingCtx};

/// N independent engines on worker threads behind the single-engine
/// surface: [`apply_update`](ShardedEngine::apply_update) /
/// [`apply_rows`](ShardedEngine::apply_rows) /
/// [`result`](ShardedEngine::result) / [`stats`](ShardedEngine::stats).
///
/// Rows of hash-routed relations are partitioned by the partition
/// variable's value; broadcast relations are replicated (see the crate
/// docs for the correctness argument and the scaling limits).  Every
/// operation runs in lockstep: each worker receives one command per batch
/// — possibly with an empty slice — and the coordinator blocks until all
/// replies arrive, so a returned [`UpdateOutcome`] reflects the fully
/// applied batch exactly like the single engine's.
///
/// Semantics notes versus a single [`Engine`]:
///
/// * `apply_*` returns `input_rows` as the size of the *caller's* batch
///   (broadcast batches are processed once per shard, but that is work
///   accounting, visible via [`stats`](ShardedEngine::stats), not input
///   accounting);
/// * scalar results merge by ring addition, relation results by
///   [`Relation::union_add`];
/// * a malformed batch (row arity, unknown relation) is rejected by the
///   coordinator *before dispatch*, so — as in the single engine — a
///   failed batch mutates no state on any shard.  (Routing a hash-routed
///   batch slices it per shard; without the up-front check, a bad row
///   would fail only its own shard while sibling shards committed their
///   slices.)
///
/// Fault containment: a worker that panics (or dies without replying)
/// surfaces as a typed [`ShardError`] instead of aborting the coordinating
/// thread.  Worker death **poisons** the engine — a panicked shard may
/// hold half-updated views, so the coordinator shuts every surviving
/// worker down cleanly (shutdown command + join) and every subsequent
/// operation returns [`ShardError::Poisoned`].  Ordinary validation
/// errors ([`ShardError::Engine`]) do *not* poison: lockstep dispatch
/// keeps all shards consistent and the engine stays usable.
pub struct ShardedEngine<R: Ring> {
    plan: ShardPlan,
    spec: QuerySpec,
    workers: Vec<Worker<R>>,
    /// The coordinator's ring context: the dictionary per-shard result
    /// partials are rekeyed into before they are merged.  Each shard owns
    /// its *own* context/dictionary (the ring-key contract: encoded ring
    /// keys never cross engines un-rekeyed); rings without dictionary-local
    /// data skip the rekey entirely (`Ring::needs_rekey`).
    ctx: RingCtx,
    /// Per relation: the column of the *currently bound* row layout that
    /// carries the partition variable (`None` for broadcast relations).
    /// Defaults to the relation's query-schema position; updated by
    /// [`ShardedEngine::bind_table`].
    route_cols: Vec<Option<usize>>,
    /// Per relation: the row-shape requirement of the current layout,
    /// mirroring the validation `Engine::apply_rows` performs per row.
    /// The coordinator applies it before dispatch so that a batch either
    /// reaches every shard or none.
    row_checks: Vec<RowCheck>,
}

/// Row-shape requirement of one relation under its current binding.
#[derive(Clone, Copy, Debug)]
enum RowCheck {
    /// Unbound layout: rows list exactly the relation's query variables.
    Exact(usize),
    /// Bound layout: rows must cover every bound column.
    Min(usize),
}

impl RowCheck {
    #[inline]
    fn ok(self, len: usize) -> bool {
        match self {
            RowCheck::Exact(n) => len == n,
            RowCheck::Min(n) => len >= n,
        }
    }
}

impl<R: Ring> ShardedEngine<R> {
    /// Builds a sharded engine, choosing the partition variable
    /// automatically (see [`ShardPlan::new`]).
    ///
    /// The view tree is compiled once; the N per-shard engines share the
    /// compiled plan ([`Engine::with_plan`]) but own disjoint state.
    /// The lifts are cloned to every shard, so this constructor is for
    /// **context-free** lift sets only (count, plain COVAR, any lift that
    /// never touches a [`RingCtx`]).  Relational-ring lifts encode keys
    /// through the dictionary they were built against, which must be the
    /// dictionary of the engine they feed — build those per shard with
    /// [`ShardedEngine::with_lift_factory`] instead (as
    /// [`crate::apps`] does); pairing externally-built relational lifts
    /// with this constructor silently mixes two dictionaries.
    pub fn new(tree: ViewTree, lifts: Vec<LiftFn<R>>, num_shards: usize) -> Result<Self> {
        let plan = ShardPlan::new(&tree, num_shards)?;
        Self::with_shard_plan(tree, move |_| Ok(lifts.clone()), plan)
    }

    /// Builds a sharded engine whose lifts are constructed **per shard**
    /// against that shard's own [`RingCtx`].  Lift sets that encode
    /// ring-interior keys (the relational rings: generalized COVAR, MI,
    /// factorized evaluation) must use this constructor so every shard's
    /// lifts share the dictionary of the engine they feed —
    /// [`crate::apps`] wires the shipped applications.
    pub fn with_lift_factory<F>(tree: ViewTree, factory: F, num_shards: usize) -> Result<Self>
    where
        F: Fn(&RingCtx) -> Result<Vec<LiftFn<R>>>,
    {
        let plan = ShardPlan::new(&tree, num_shards)?;
        Self::with_shard_plan(tree, factory, plan)
    }

    /// Builds a sharded engine partitioning on an explicit variable.
    /// Like [`ShardedEngine::new`], this clones one lift set to every
    /// shard and is therefore for **context-free** lifts only; relational
    /// rings must use
    /// [`ShardedEngine::with_partition_variable_factory`].
    pub fn with_partition_variable(
        tree: ViewTree,
        lifts: Vec<LiftFn<R>>,
        var: usize,
        num_shards: usize,
    ) -> Result<Self> {
        let plan = ShardPlan::with_partition_variable(&tree, var, num_shards)?;
        Self::with_shard_plan(tree, move |_| Ok(lifts.clone()), plan)
    }

    /// [`ShardedEngine::with_lift_factory`] with an explicit partition
    /// variable: lifts are built per shard against that shard's own
    /// [`RingCtx`], as the ring-key contract requires for relational
    /// rings.
    pub fn with_partition_variable_factory<F>(
        tree: ViewTree,
        factory: F,
        var: usize,
        num_shards: usize,
    ) -> Result<Self>
    where
        F: Fn(&RingCtx) -> Result<Vec<LiftFn<R>>>,
    {
        let plan = ShardPlan::with_partition_variable(&tree, var, num_shards)?;
        Self::with_shard_plan(tree, factory, plan)
    }

    fn with_shard_plan<F>(tree: ViewTree, lift_factory: F, plan: ShardPlan) -> Result<Self>
    where
        F: Fn(&RingCtx) -> Result<Vec<LiftFn<R>>>,
    {
        let spec = tree.spec().clone();
        let exec = ExecutionPlan::compile(tree)?;
        let workers = (0..plan.num_shards())
            .map(|shard| {
                // One context (and therefore one dictionary) per shard.
                let ctx = RingCtx::new();
                let lifts = lift_factory(&ctx)?;
                let engine = Engine::with_plan_ctx(exec.clone(), lifts, ctx)?;
                Ok(Worker::spawn(shard, engine))
            })
            .collect::<Result<Vec<_>>>()?;
        let route_cols = (0..spec.num_relations())
            .map(|rel| match plan.routing(rel) {
                RelationRouting::Hashed { col } => Some(col),
                RelationRouting::Broadcast => None,
            })
            .collect();
        let row_checks = (0..spec.num_relations())
            .map(|rel| RowCheck::Exact(spec.relation(rel).vars.len()))
            .collect();
        Ok(ShardedEngine {
            plan,
            spec,
            workers,
            ctx: RingCtx::new(),
            route_cols,
            row_checks,
        })
    }

    /// The coordinator's ring context: merged results (from
    /// [`ShardedEngine::result`] / [`ShardedEngine::result_relation`]) are
    /// encoded under this context's dictionary; decode relational payload
    /// entries through it.
    pub fn ctx(&self) -> &RingCtx {
        &self.ctx
    }

    /// The sharding decision this engine runs under.
    pub fn shard_plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.workers.len()
    }

    /// The query specification.
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// Poisons the engine on fatal (worker-death) errors: dropping the
    /// worker handles sends every surviving shard a shutdown command and
    /// joins its thread, so no worker threads leak.  Non-fatal errors pass
    /// through untouched.
    fn poison(&mut self, e: ShardError) -> ShardError {
        if e.is_fatal() {
            self.workers.clear();
        }
        e
    }

    /// Rejects every operation after the engine was poisoned.
    fn ensure_live(&self) -> ShardResult<()> {
        if self.workers.is_empty() {
            return Err(ShardError::Poisoned);
        }
        Ok(())
    }

    /// Binds a relation to a table layout on every shard (mirrors
    /// [`Engine::bind_table`]) and re-resolves the routing column of
    /// hash-routed relations against the new layout.
    pub fn bind_table(&mut self, rel: RelId, schema: &Schema) -> ShardResult<()> {
        self.ensure_live()?;
        self.bind_table_inner(rel, schema)
            .map_err(|e| self.poison(e))
    }

    fn bind_table_inner(&mut self, rel: RelId, schema: &Schema) -> ShardResult<()> {
        for w in &self.workers {
            w.send(Cmd::Bind {
                rel,
                schema: schema.clone(),
            })?;
        }
        let mut first_err: Option<EngineError> = None;
        for w in &self.workers {
            if let Err(e) = w.recv_bound()? {
                first_err.get_or_insert(e);
            }
        }
        if let Some(e) = first_err {
            return Err(e.into());
        }
        if let RelationRouting::Hashed { .. } = self.plan.routing(rel) {
            let name = self.spec.var_name(self.plan.partition_var());
            let col = schema.position(name).ok_or_else(|| {
                FivmError::InvalidUpdate(format!(
                    "table bound to relation `{}` has no column `{name}` to route by",
                    self.spec.relation(rel).name
                ))
            })?;
            self.route_cols[rel] = Some(col);
        }
        // The bind succeeded on every shard, so every relation variable has
        // a column; rows must now cover the deepest bound column.
        let max_col = self.spec.relation(rel).vars.iter().map(|&v| {
            schema
                .position(self.spec.var_name(v))
                .expect("worker binds succeeded, so every variable has a column")
        });
        self.row_checks[rel] = RowCheck::Min(max_col.max().map_or(0, |c| c + 1));
        Ok(())
    }

    /// Rejects a batch whose rows do not fit the relation's current layout
    /// — before anything is dispatched, so a failed batch mutates no shard.
    fn check_row(&self, rel: RelId, row: &Tuple) -> Result<()> {
        if self.row_checks[rel].ok(row.len()) {
            return Ok(());
        }
        Err(FivmError::InvalidUpdate(match self.row_checks[rel] {
            RowCheck::Exact(arity) => format!(
                "row arity {} does not match relation arity {arity}",
                row.len()
            ),
            RowCheck::Min(min) => format!(
                "row has {} columns but column {} was bound",
                row.len(),
                min - 1
            ),
        }))
    }

    /// Loads an initial database, binding and routing every table exactly
    /// like [`Engine::load_database`] does for a single engine.
    pub fn load_database(&mut self, db: &Database) -> ShardResult<()> {
        for rel in 0..self.spec.num_relations() {
            let name = self.spec.relation(rel).name.clone();
            let table = db.table(&name).ok_or_else(|| {
                FivmError::InvalidUpdate(format!("database has no table named `{name}`"))
            })?;
            self.bind_table(rel, &table.schema)?;
            self.apply_batch(rel, &table.rows)?;
        }
        Ok(())
    }

    /// Applies an update batch addressed by table name.
    pub fn apply_update(&mut self, update: &Update) -> ShardResult<UpdateOutcome> {
        let rel = self.spec.relation_id(&update.table).ok_or_else(|| {
            FivmError::InvalidUpdate(format!(
                "update targets unknown relation `{}`",
                update.table
            ))
        })?;
        self.apply_batch(rel, &update.rows)
    }

    /// Applies a batch of `(row, multiplicity)` changes to a relation;
    /// rows follow the bound table layout (or the relation's query schema
    /// if never bound), exactly as in [`Engine::apply_rows`].
    pub fn apply_rows<I>(&mut self, rel: RelId, rows: I) -> ShardResult<UpdateOutcome>
    where
        I: IntoIterator<Item = (Tuple, i64)>,
    {
        self.ensure_live()?;
        if rel >= self.spec.num_relations() {
            return Err(FivmError::InvalidUpdate(format!(
                "relation id {rel} is out of range"
            ))
            .into());
        }
        match self.route_cols[rel] {
            None => {
                // Broadcast owned rows: clone for all shards but the last,
                // which takes the caller's batch by move.
                let rows: Vec<(Tuple, i64)> = rows.into_iter().collect();
                for (row, mult) in &rows {
                    if *mult != 0 {
                        self.check_row(rel, row)?;
                    }
                }
                let input_rows = rows.len();
                let mut batches: Vec<Vec<(Tuple, i64)>> =
                    (1..self.workers.len()).map(|_| rows.clone()).collect();
                batches.push(rows);
                self.dispatch(rel, batches, input_rows)
            }
            Some(col) => {
                // Hash-routed owned rows move straight into their shard's
                // batch without cloning.  Validation happens here, before
                // anything is dispatched.
                let n = self.workers.len();
                let mut batches: Vec<Vec<(Tuple, i64)>> = (0..n).map(|_| Vec::new()).collect();
                let mut input_rows = 0usize;
                for (row, mult) in rows {
                    input_rows += 1;
                    // Zero-multiplicity rows are no-ops the single engine
                    // accepts without validating; skip them symmetrically.
                    if mult == 0 {
                        continue;
                    }
                    self.check_row(rel, &row)?;
                    let shard = self.shard_of_row(col, &row);
                    batches[shard].push((row, mult));
                }
                self.dispatch(rel, batches, input_rows)
            }
        }
    }

    /// Routes a borrowed batch (cloning rows into the per-shard slices or
    /// replicating them for broadcast relations) and dispatches it.  Rows
    /// are validated up front so a malformed batch reaches no shard.
    fn apply_batch(&mut self, rel: RelId, rows: &[(Tuple, i64)]) -> ShardResult<UpdateOutcome> {
        self.ensure_live()?;
        // Zero-multiplicity rows are no-ops the single engine accepts
        // without validating; treat them symmetrically here.
        for (row, mult) in rows {
            if *mult != 0 {
                self.check_row(rel, row)?;
            }
        }
        let n = self.workers.len();
        let batches: Vec<Vec<(Tuple, i64)>> = match self.route_cols[rel] {
            None => (0..n).map(|_| rows.to_vec()).collect(),
            Some(col) => {
                let mut batches: Vec<Vec<(Tuple, i64)>> = (0..n).map(|_| Vec::new()).collect();
                for (row, mult) in rows {
                    if *mult == 0 {
                        continue;
                    }
                    batches[self.shard_of_row(col, row)].push((row.clone(), *mult));
                }
                batches
            }
        };
        self.dispatch(rel, batches, rows.len())
    }

    /// The shard owning a (validated) row of a hash-routed relation.
    #[inline]
    fn shard_of_row(&self, col: usize, row: &Tuple) -> usize {
        self.plan.shard_of(&row[col])
    }

    /// Sends one (possibly empty) batch per shard and merges the outcomes.
    fn dispatch(
        &mut self,
        rel: RelId,
        batches: Vec<Vec<(Tuple, i64)>>,
        input_rows: usize,
    ) -> ShardResult<UpdateOutcome> {
        self.dispatch_inner(rel, batches, input_rows)
            .map_err(|e| self.poison(e))
    }

    fn dispatch_inner(
        &self,
        rel: RelId,
        batches: Vec<Vec<(Tuple, i64)>>,
        input_rows: usize,
    ) -> ShardResult<UpdateOutcome> {
        for (w, rows) in self.workers.iter().zip(batches) {
            w.send(Cmd::Apply { rel, rows })?;
        }
        let mut merged = UpdateOutcome::default();
        let mut first_err: Option<EngineError> = None;
        for w in &self.workers {
            match w.recv_outcome()? {
                Ok(o) => merged = merged.merge(&o),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e.into());
        }
        Ok(UpdateOutcome {
            input_rows,
            delta_entries: merged.delta_entries,
        })
    }

    /// The query result for queries without group-by variables: the ring
    /// sum of the shard partials (each the product of that shard's root
    /// views).
    ///
    /// Takes `&mut self` (like every read below): a worker failure
    /// discovered here poisons the engine and shuts the surviving shards
    /// down, which mutates the worker set.
    pub fn result(&mut self) -> ShardResult<R> {
        self.ensure_live()?;
        self.result_inner().map_err(|e| self.poison(e))
    }

    fn result_inner(&self) -> ShardResult<R> {
        for w in &self.workers {
            w.send(Cmd::Result)?;
        }
        let mut acc = R::zero();
        for w in &self.workers {
            let (partial, dict) = w.recv_result()?;
            match dict {
                // Rekey the shard's dictionary-local words into the
                // coordinator's dictionary before ring-adding.
                Some(src) => {
                    let rekeyed = self.ctx.with_dict_mut(|dst| partial.rekey(&src, dst));
                    acc.add_assign(&rekeyed);
                }
                None => acc.add_assign(&partial),
            }
        }
        Ok(acc)
    }

    /// The query result as a relation over the free variables: the
    /// payload-wise union ([`Relation::union_add`]) of the shard partials.
    pub fn result_relation(&mut self) -> ShardResult<Relation<R>> {
        self.ensure_live()?;
        self.result_relation_inner().map_err(|e| self.poison(e))
    }

    fn result_relation_inner(&self) -> ShardResult<Relation<R>> {
        for w in &self.workers {
            w.send(Cmd::ResultRelation)?;
        }
        let mut acc: Option<Relation<R>> = None;
        for w in &self.workers {
            let (partial, dict) = w.recv_relation()?;
            let partial = match dict {
                Some(src) => self.ctx.with_dict_mut(|dst| rekey_relation(&partial, &src, dst)),
                None => partial,
            };
            match &mut acc {
                None => acc = Some(partial),
                Some(a) => a.union_add(&partial),
            }
        }
        Ok(acc.expect("a sharded engine has at least one shard"))
    }

    /// Work counters summed across shards ([`EngineStats::merge`]).
    pub fn stats(&mut self) -> ShardResult<EngineStats> {
        Ok(self
            .shard_stats()?
            .iter()
            .fold(EngineStats::default(), |acc, s| acc.merge(s)))
    }

    /// Per-shard work counters, indexed by shard id.
    pub fn shard_stats(&mut self) -> ShardResult<Vec<EngineStats>> {
        self.ensure_live()?;
        self.shard_stats_inner().map_err(|e| self.poison(e))
    }

    fn shard_stats_inner(&self) -> ShardResult<Vec<EngineStats>> {
        for w in &self.workers {
            w.send(Cmd::Stats)?;
        }
        self.workers.iter().map(Worker::recv_stats).collect()
    }

    /// Number of keys stored across all shards' materialized views
    /// (broadcast relations count once per shard).
    pub fn total_view_entries(&mut self) -> ShardResult<usize> {
        self.ensure_live()?;
        self.total_view_entries_inner().map_err(|e| self.poison(e))
    }

    fn total_view_entries_inner(&self) -> ShardResult<usize> {
        for w in &self.workers {
            w.send(Cmd::ViewEntries)?;
        }
        self.workers.iter().map(|w| w.recv_view_entries()).sum()
    }
}

/// Rekeys every payload of a relation from `src`'s dictionary into `dst`'s
/// (relation *keys* are already decoded `Value`s and pass through).
fn rekey_relation<R: Ring>(rel: &Relation<R>, src: &Dict, dst: &mut Dict) -> Relation<R> {
    Relation::from_entries(
        rel.vars().to_vec(),
        rel.iter().map(|(k, p)| (k.clone(), p.rekey(src, dst))),
    )
}

impl<R: Ring> std::fmt::Debug for ShardedEngine<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.workers.len())
            .field("partition_var", &self.spec.var_name(self.plan.partition_var()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_core::apps;
    use fivm_query::spec::figure1_query;
    use fivm_common::Value;
    use fivm_relation::tuple;

    fn figure1_tree() -> ViewTree {
        let spec = figure1_query(false);
        let a = spec.var_id("A").unwrap();
        let c = spec.var_id("C").unwrap();
        let mut parents = vec![None; 4];
        parents[spec.var_id("B").unwrap()] = Some(a);
        parents[c] = Some(a);
        parents[spec.var_id("D").unwrap()] = Some(c);
        ViewTree::from_parent_vars(spec, &parents).unwrap()
    }

    fn t(vals: &[i64]) -> Tuple {
        tuple(vals.iter().map(|&v| Value::int(v)))
    }

    #[test]
    fn sharded_count_matches_single_engine() {
        let tree = figure1_tree();
        let lifts = apps::count_lifts(tree.spec());
        let mut single = Engine::new(tree.clone(), lifts.clone()).unwrap();
        let mut sharded = ShardedEngine::new(tree, lifts, 3).unwrap();

        let r_rows: Vec<(Tuple, i64)> = (0..20).map(|i| (t(&[i % 7, i]), 1)).collect();
        let s_rows: Vec<(Tuple, i64)> = (0..30).map(|i| (t(&[i % 7, i % 5, i]), 1)).collect();
        single.apply_rows(0, r_rows.clone()).unwrap();
        single.apply_rows(1, s_rows.clone()).unwrap();
        let o1 = sharded.apply_rows(0, r_rows).unwrap();
        sharded.apply_rows(1, s_rows).unwrap();

        assert_eq!(o1.input_rows, 20);
        assert_eq!(sharded.result().unwrap(), single.result());
        assert!(single.result() > 0);

        // Deletes ride the same path.
        single.apply_rows(0, vec![(t(&[1, 1]), -1)]).unwrap();
        sharded.apply_rows(0, vec![(t(&[1, 1]), -1)]).unwrap();
        assert_eq!(sharded.result().unwrap(), single.result());
    }

    #[test]
    fn one_shard_behaves_like_the_single_engine() {
        let tree = figure1_tree();
        let lifts = apps::count_lifts(tree.spec());
        let mut single = Engine::new(tree.clone(), lifts.clone()).unwrap();
        let mut sharded = ShardedEngine::new(tree, lifts, 1).unwrap();
        let rows: Vec<(Tuple, i64)> = (0..10).map(|i| (t(&[i, i]), 1)).collect();
        let a = single.apply_rows(0, rows.clone()).unwrap();
        let b = sharded.apply_rows(0, rows).unwrap();
        assert_eq!(a, b);
        assert_eq!(sharded.stats().unwrap().delta_entries, single.stats().delta_entries);
    }

    #[test]
    fn unknown_table_and_bad_arity_are_rejected() {
        let tree = figure1_tree();
        let lifts = apps::count_lifts(tree.spec());
        let mut sharded = ShardedEngine::new(tree, lifts, 2).unwrap();
        let err = sharded
            .apply_update(&Update::inserts("Nope", vec![t(&[1, 2])]))
            .unwrap_err();
        assert_eq!(err.kind(), "invalid_update");
        // A row arity mismatch is caught before dispatch; the engine stays
        // usable for the next batch.
        let err = sharded.apply_rows(0, vec![(t(&[1]), 1)]).unwrap_err();
        assert_eq!(err.kind(), "invalid_update");
        sharded.apply_rows(0, vec![(t(&[1, 2]), 1)]).unwrap();
        assert_eq!(sharded.result().unwrap(), 0);
        // Zero-multiplicity rows are accepted unvalidated, exactly like
        // `Engine::apply_rows` (which skips them before any arity check).
        let o = sharded
            .apply_rows(0, vec![(t(&[9]), 0), (t(&[2, 2]), 1)])
            .unwrap();
        assert_eq!(o.input_rows, 2);
    }

    #[test]
    fn malformed_batches_are_rejected_atomically_across_shards() {
        // A batch mixing valid rows (routed to one shard) with a malformed
        // row (routed to another) must mutate NO shard — exactly like the
        // single engine's whole-batch rejection.
        let tree = figure1_tree();
        let lifts = apps::count_lifts(tree.spec());
        let mut sharded = ShardedEngine::new(tree, lifts, 4).unwrap();
        sharded.apply_rows(0, vec![(t(&[1, 2]), 1)]).unwrap();
        let entries_before = sharded.total_view_entries().unwrap();
        let stats_before = sharded.stats().unwrap();

        let mixed: Vec<(Tuple, i64)> = (0..8)
            .map(|i| (t(&[i, i]), 1))
            .chain([(t(&[9]), 1)]) // wrong arity
            .collect();
        let err = sharded.apply_rows(0, mixed).unwrap_err();
        assert_eq!(err.kind(), "invalid_update");
        assert_eq!(
            sharded.total_view_entries().unwrap(),
            entries_before,
            "a rejected batch must not commit any shard's slice"
        );
        assert_eq!(sharded.stats().unwrap().rows_applied, stats_before.rows_applied);
    }

    #[test]
    fn worker_panic_is_contained_and_poisons_the_engine() {
        use fivm_ring::LiftFn;
        let tree = figure1_tree();
        let spec = tree.spec().clone();
        let b = spec.var_id("B").unwrap();
        let mut lifts = apps::count_lifts(&spec);
        // A lift that panics on a sentinel value injects an engine panic on
        // exactly the shard the poisoned row routes to.
        lifts[b] = LiftFn::new("panic_on_666", |v: &fivm_common::Value| {
            if v.as_i64() == Some(666) {
                panic!("injected lift failure");
            }
            1i64
        });
        let mut sharded = ShardedEngine::new(tree, lifts, 2).unwrap();
        sharded.apply_rows(0, vec![(t(&[1, 2]), 1)]).unwrap();

        // The panicking batch returns a typed error on the coordinating
        // thread instead of aborting or hanging it.
        let err = sharded.apply_rows(0, vec![(t(&[1, 666]), 1)]).unwrap_err();
        assert_eq!(err.kind(), "worker_panicked");
        assert!(err.to_string().contains("injected lift failure"));

        // The engine is poisoned: surviving workers were shut down and
        // every subsequent operation reports it (no expects, no deadlock).
        let err = sharded.apply_rows(0, vec![(t(&[1, 2]), 1)]).unwrap_err();
        assert_eq!(err.kind(), "poisoned");
        assert_eq!(sharded.result().unwrap_err().kind(), "poisoned");
        assert_eq!(sharded.stats().unwrap_err().kind(), "poisoned");
        // Dropping the poisoned engine joins cleanly (checked implicitly:
        // the test would hang here if shutdown were broken).
    }

    #[test]
    fn stats_sum_across_shards() {
        let tree = figure1_tree();
        let lifts = apps::count_lifts(tree.spec());
        let mut sharded = ShardedEngine::new(tree, lifts, 4).unwrap();
        let rows: Vec<(Tuple, i64)> = (0..40).map(|i| (t(&[i, i]), 1)).collect();
        sharded.apply_rows(0, rows).unwrap();
        let per_shard = sharded.shard_stats().unwrap();
        assert_eq!(per_shard.len(), 4);
        let merged = sharded.stats().unwrap();
        assert_eq!(
            merged.rows_applied,
            per_shard.iter().map(|s| s.rows_applied).sum::<usize>()
        );
        // Hash-routed batch: every input row lands on exactly one shard.
        assert_eq!(merged.rows_applied, 40);
        // Every shard saw exactly one batch.
        assert!(per_shard.iter().all(|s| s.updates_applied == 1));
        assert!(sharded.total_view_entries().unwrap() > 0);
        // The byte gauge sums shard footprints, and every shard that holds
        // keys reports a non-zero footprint.
        assert_eq!(
            merged.table_bytes,
            per_shard.iter().map(|s| s.table_bytes).sum::<usize>()
        );
        assert!(per_shard.iter().all(|s| s.table_bytes > 0));
    }
}
