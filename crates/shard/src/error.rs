//! Typed coordinator errors: [`ShardError`] and the [`ShardResult`] alias.
//!
//! The sharded engine talks to worker threads over channels, which adds two
//! failure modes a single [`fivm_core::Engine`] does not have: a worker can
//! *panic* while applying a command (an engine bug, a poisoned lift), and a
//! worker thread can *die* without replying.  Both used to abort the
//! coordinating thread via `expect`; they now surface as values, the
//! coordinator shuts the surviving shards down cleanly, and the engine
//! reports [`ShardError::Poisoned`] for every subsequent operation.

use fivm_core::EngineError;
use std::fmt;

/// Result alias using [`ShardError`].
pub type ShardResult<T> = std::result::Result<T, ShardError>;

/// Errors raised by [`crate::ShardedEngine`]'s public surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A worker thread panicked while executing a command.  The panic
    /// payload (if it was a string) is captured in `detail`; the engine is
    /// poisoned afterwards.
    WorkerPanicked { shard: usize, detail: String },
    /// A worker thread terminated without replying — died without a
    /// catchable panic.  The engine is poisoned afterwards.
    Disconnected { shard: usize },
    /// The engine was poisoned by an earlier worker failure; all shards
    /// have been shut down and no further operations are possible.
    Poisoned,
    /// A per-shard engine returned an error (validation failures travel
    /// here; they do **not** poison the engine — lockstep dispatch keeps
    /// every shard consistent and usable).
    Engine(EngineError),
}

impl ShardError {
    /// Short machine-readable category name.  Engine errors pass through
    /// their own [`EngineError::kind`], so existing `kind()` matches on
    /// validation failures keep working against the sharded surface.
    pub fn kind(&self) -> &'static str {
        match self {
            ShardError::WorkerPanicked { .. } => "worker_panicked",
            ShardError::Disconnected { .. } => "disconnected",
            ShardError::Poisoned => "poisoned",
            ShardError::Engine(e) => e.kind(),
        }
    }

    /// Whether this error poisons the engine (worker death does; engine
    /// validation errors do not).
    pub(crate) fn is_fatal(&self) -> bool {
        matches!(
            self,
            ShardError::WorkerPanicked { .. } | ShardError::Disconnected { .. }
        )
    }
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::WorkerPanicked { shard, detail } => {
                write!(f, "shard worker {shard} panicked: {detail}")
            }
            ShardError::Disconnected { shard } => {
                write!(f, "shard worker {shard} terminated unexpectedly")
            }
            ShardError::Poisoned => {
                write!(f, "sharded engine is poisoned by an earlier worker failure")
            }
            ShardError::Engine(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ShardError {
    fn from(e: EngineError) -> Self {
        ShardError::Engine(e)
    }
}

impl From<fivm_common::FivmError> for ShardError {
    fn from(e: fivm_common::FivmError) -> Self {
        ShardError::Engine(EngineError::Query(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_common::FivmError;

    #[test]
    fn kinds_pass_through_engine_errors() {
        let e = ShardError::from(FivmError::InvalidUpdate("bad".into()));
        assert_eq!(e.kind(), "invalid_update");
        assert!(!e.is_fatal());
        let p = ShardError::WorkerPanicked {
            shard: 2,
            detail: "boom".into(),
        };
        assert_eq!(p.kind(), "worker_panicked");
        assert!(p.is_fatal());
        assert!(p.to_string().contains("worker 2"));
        assert_eq!(ShardError::Poisoned.kind(), "poisoned");
        assert_eq!(ShardError::Disconnected { shard: 0 }.kind(), "disconnected");
    }

    #[test]
    fn engine_errors_expose_a_source() {
        use std::error::Error;
        let e = ShardError::from(FivmError::RingMismatch("dim".into()));
        assert!(e.source().is_some());
        assert!(ShardError::Poisoned.source().is_none());
    }
}
