//! Ready-made sharded configurations, mirroring [`fivm_core::apps`].
//!
//! Each constructor reuses the single-engine lift builders, so the sharded
//! and unsharded deployments of an application cannot diverge in their
//! attribute functions.  Applications over the relational rings build
//! their lifts **per shard** ([`ShardedEngine::with_lift_factory`]): each
//! shard's lifts encode ring-interior keys through that shard's own
//! dictionary, as the ring-key contract requires.

use crate::engine::ShardedEngine;
use fivm_common::{Result, VarId};
use fivm_core::apps::{count_lifts, covar_lifts, gen_covar_lifts, mi_lifts};
use fivm_core::BinSpec;
use fivm_query::ViewTree;
use fivm_ring::{Cofactor, GenCofactor};
use std::collections::HashMap;

/// A sharded count engine (`Z` ring).
pub fn sharded_count_engine(tree: ViewTree, num_shards: usize) -> Result<ShardedEngine<i64>> {
    let lifts = count_lifts(tree.spec());
    ShardedEngine::new(tree, lifts, num_shards)
}

/// A sharded COVAR engine over continuous attributes only.
pub fn sharded_covar_engine(
    tree: ViewTree,
    num_shards: usize,
) -> Result<ShardedEngine<Cofactor>> {
    let lifts = covar_lifts(tree.spec())?;
    ShardedEngine::new(tree, lifts, num_shards)
}

/// A sharded COVAR engine over mixed continuous/categorical attributes.
pub fn sharded_gen_covar_engine(
    tree: ViewTree,
    num_shards: usize,
) -> Result<ShardedEngine<GenCofactor>> {
    let spec = tree.spec().clone();
    ShardedEngine::with_lift_factory(tree, move |ctx| Ok(gen_covar_lifts(&spec, ctx)), num_shards)
}

/// A sharded mutual-information engine; see [`fivm_core::apps::mi_lifts`].
pub fn sharded_mi_engine(
    tree: ViewTree,
    binnings: &HashMap<VarId, BinSpec>,
    num_shards: usize,
) -> Result<ShardedEngine<GenCofactor>> {
    let spec = tree.spec().clone();
    let binnings = binnings.clone();
    ShardedEngine::with_lift_factory(
        tree,
        move |ctx| mi_lifts(&spec, &binnings, ctx),
        num_shards,
    )
}
