#![forbid(unsafe_code)]
//! Partition-aware sharded maintenance: N independent [`fivm_core::Engine`]s
//! on worker threads behind one [`ShardedEngine`] facade.
//!
//! # How the split works
//!
//! A [`ShardPlan`] picks one *partition variable* `P` from the query
//! (preferring the variable-order root — see
//! [`fivm_query::PartitionPlan::choose`]) and classifies every relation:
//!
//! * **hash-routed** — the schema contains `P`; each row goes to the shard
//!   `route_hash(row[P]) mod N`,
//! * **broadcast** — the schema does not contain `P`; rows are replicated
//!   to every shard.
//!
//! Each shard owns a full engine: its own views, scratch and — per the
//! hash-once key contract (ROADMAP.md) — its own `Dict`.  Encoded keys and
//! precomputed hashes never cross shard boundaries; only raw [`Tuple`] rows
//! travel over the channels, and results are decoded at the output
//! boundary per shard before merging.
//!
//! # Why the merge is ring addition
//!
//! Every full join assignment binds `P` to exactly one value, and every
//! relation row contributing to it either carries that value (hash-routed,
//! present in exactly the owning shard) or is broadcast (present in all).
//! So the assignments materialize in exactly one shard each: per-shard
//! results are disjoint partial sums, and by distributivity of ring `*`
//! over `+` the global result is their ring sum.  Group-by outputs are the
//! per-key instance of the same fact — shards whose keys contain `P` emit
//! disjoint key sets and the merge is a disjoint union; otherwise
//! [`fivm_relation::Relation::union_add`] sums the colliding payloads,
//! which is the same ring addition per key.
//!
//! # When sharding stops paying
//!
//! Sharding splits only the work of *hash-routed* relations.  A broadcast
//! relation costs every shard the full update: with `B` of the update
//! volume hitting broadcast relations and `N` shards, the ideal speedup
//! degrades from `N` to `1 / (B + (1 − B)/N)` (Amdahl with the broadcast
//! fraction as the serial part, *plus* N−1 redundant copies of it).  The
//! snowflake/star workloads here route their fact table — which dominates
//! update volume — so `B ≈ 0` and scaling is governed by cores and by
//! routing overhead; but a workload updating mostly dimension tables that
//! miss the partition variable replicates nearly all its work `N` times
//! and is better served by a different partition variable
//! ([`ShardedEngine::with_partition_variable`]) or by a single engine.
//! Per-shard state also shrinks only for routed relations: broadcast views
//! are replicated N times in memory.
//!
//! # Fault containment
//!
//! A panic inside a shard engine is caught on the worker thread and
//! surfaces as [`ShardError::WorkerPanicked`] on the coordinating thread;
//! a worker that dies without replying surfaces as
//! [`ShardError::Disconnected`].  Either poisons the engine: the
//! surviving workers are shut down cleanly (shutdown + join, no leaked
//! threads) and later operations return [`ShardError::Poisoned`].  See
//! [`ShardedEngine`] and [`error`].
//!
//! [`Tuple`]: fivm_relation::Tuple

pub mod apps;
pub mod engine;
pub mod error;
pub mod plan;

mod worker;

pub use engine::ShardedEngine;
pub use error::{ShardError, ShardResult};
pub use plan::{route_hash, ShardPlan};
