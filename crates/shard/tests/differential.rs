//! Seeded differential tests: `ShardedEngine` with N ∈ {1, 2, 4} against a
//! single `Engine` on Retailer and Favorita update streams, for the
//! COUNT, COVAR and MI applications.
//!
//! Both sides consume byte-identical update sequences (the streams are
//! pure functions of their seeds; see `fivm_data::stream`), and results
//! are compared at the output boundary: ring-equal payloads under
//! decoded-key-equal keys.
//!
//! # Exactness
//!
//! Sharding re-associates ring additions (per-shard partials are summed at
//! the merge), so bit-for-bit equality of `f64`-based payloads holds
//! exactly when the arithmetic itself is exact.  Three of the four
//! configurations are exact by construction:
//!
//! * COUNT — `i64` arithmetic;
//! * MI — payloads are counts of binned values (integer-valued `f64`s);
//! * COVAR on *quantized* streams — every continuous value is rounded to
//!   an integer, so all sums/products stay integers far below 2^53 and
//!   every addition order yields the same bits.
//!
//! Those three are asserted **bit-for-bit** (`==` on the ring values).
//! COVAR on the raw (unquantized) streams re-associates genuinely
//! non-exact float sums, where no addition order is more correct than
//! another; it is asserted with a tight relative tolerance instead.
//!
//! Each configuration also checks the steady-state hash-once contract per
//! shard: a delete/re-insert churn of an already-applied bulk must not
//! rehash any view table on any shard.

use fivm_core::{AggregateLayout, BinSpec, Engine};
use fivm_common::Value;
use fivm_data::retailer::{retailer_query_continuous, retailer_tree};
use fivm_data::{FavoritaConfig, RetailerConfig, StreamConfig, UpdateStream};
use fivm_query::{RelationRouting, ViewTree};
use fivm_relation::{tuple, BaseTable, Database, Tuple, Update};
use fivm_ring::{ApproxEq, LiftFn, Ring, RingCtx};
use fivm_shard::ShardedEngine;
use rand::Rng;
use std::collections::HashMap;

// ---------------------------------------------------------------- helpers

fn quantize_value(v: &Value) -> Value {
    match v {
        Value::Double(d) => Value::double(d.get().round()),
        other => other.clone(),
    }
}

fn quantize_tuple(t: &[Value]) -> Tuple {
    t.iter().map(quantize_value).collect::<Vec<_>>().into_boxed_slice()
}

/// Rounds every continuous value of a stream to an integer.  Quantizing
/// *after* generation preserves the stream's insert/delete pairing: a
/// delete clones its insert's row, so both quantize to the same key.
fn quantize_updates(updates: &[Update]) -> Vec<Update> {
    updates
        .iter()
        .map(|u| {
            Update::with_multiplicities(
                u.table.clone(),
                u.rows
                    .iter()
                    .map(|(r, m)| (quantize_tuple(r), *m))
                    .collect(),
            )
        })
        .collect()
}

fn quantize_database(db: &Database) -> Database {
    let mut out = Database::new();
    for table in db.tables() {
        let mut t = BaseTable::new(table.name.clone(), table.schema.clone());
        for (row, mult) in &table.rows {
            t.push_with_multiplicity(quantize_tuple(row), *mult);
        }
        out.add_table(t).expect("names stay unique");
    }
    out
}

/// Decodes a result relation into a sorted, comparison-friendly listing.
fn sorted_entries<R: Ring>(rel: &fivm_relation::Relation<R>) -> Vec<(Tuple, R)> {
    let mut entries: Vec<(Tuple, R)> = rel.iter().map(|(k, p)| (k.clone(), p.clone())).collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries
}

/// How a configuration's results must agree.
///
/// `Exact` compares ring payloads with `==`, which for the relational
/// rings compares *encoded* interiors.  That is dictionary-independent
/// only because every categorical value in these workloads is an integer
/// (integers encode identically under any dictionary).  A future workload
/// with **string** categories must compare decoded entries instead
/// (`RelValue::decode_entries` under each side's own dictionary, as
/// `crates/ring/tests/relvalue_differential.rs` does) — string ids are
/// dictionary-local and `==` across the single engine's and the sharded
/// coordinator's dictionaries would be meaningless.
#[derive(Clone, Copy)]
enum Agreement {
    /// Bit-for-bit: `==` on ring values.
    Exact,
    /// Relative tolerance (raw-float COVAR, where sharding re-associates
    /// non-exact sums).
    Approx(f64),
}

/// Replays `updates` through a single engine and through sharded engines
/// with N ∈ {1, 2, 4}, comparing results and checking the per-shard
/// steady-state rehash contract (view tables *and* ring-interior tables).
///
/// Lifts are built per engine through `lifts`, against that engine's own
/// ring context — exactly how `fivm_shard::apps` wires the relational
/// rings, whose encoded interior keys must never cross dictionaries.
fn run_differential<R: Ring + ApproxEq>(
    tree: &ViewTree,
    lifts: &(impl Fn(&RingCtx) -> Vec<LiftFn<R>> + Clone),
    db: &Database,
    updates: &[Update],
    agreement: Agreement,
    ctx: &str,
) {
    let single_ctx = RingCtx::new();
    let mut single = Engine::new_with_ctx(tree.clone(), lifts(&single_ctx), single_ctx)
        .expect("single engine");
    single.load_database(db).expect("single load");
    for u in updates {
        single.apply_update(u).expect("single update");
    }
    let expected = sorted_entries(&single.result_relation());

    for shards in [1usize, 2, 4] {
        let factory = lifts.clone();
        let mut sharded =
            ShardedEngine::with_lift_factory(tree.clone(), move |c| Ok(factory(c)), shards)
                .expect("sharded engine");
        sharded.load_database(db).expect("sharded load");
        let mut input_rows = 0usize;
        for u in updates {
            let outcome = sharded.apply_update(u).expect("sharded update");
            assert_eq!(outcome.input_rows, u.len(), "{ctx}: outcome counts caller rows");
            input_rows += outcome.input_rows;
        }
        assert_eq!(input_rows, updates.iter().map(Update::len).sum::<usize>());

        let got = sorted_entries(&sharded.result_relation().expect("sharded result"));
        assert_eq!(
            got.len(),
            expected.len(),
            "{ctx}, N={shards}: result cardinality diverged"
        );
        for ((gk, gp), (ek, ep)) in got.iter().zip(expected.iter()) {
            assert_eq!(gk, ek, "{ctx}, N={shards}: decoded keys diverged");
            match agreement {
                Agreement::Exact => assert!(
                    gp == ep,
                    "{ctx}, N={shards}: payload not bit-for-bit equal at key {gk:?}"
                ),
                Agreement::Approx(tol) => assert!(
                    gp.approx_eq(ep, tol),
                    "{ctx}, N={shards}: payload outside tolerance at key {gk:?}"
                ),
            }
        }

        // Steady state: an insert/undo churn over initial fact-table rows
        // touches only keys that are live on every view of the maintenance
        // path (database rows are never net-deleted by the stream, so no
        // payload reaches zero and no slot is tombstoned), which is
        // exactly the regime where the hash-once contract forbids any
        // rehash — on every shard.  (Deleting keys outright may tombstone
        // them, and a later insert may legally trigger a tombstone
        // compaction; that is table maintenance, not key re-hashing, and a
        // single engine does the same.)
        let fact_name = &updates[0].table;
        let fact_rows: Vec<(Tuple, i64)> = db
            .table(fact_name)
            .expect("streams target a database table")
            .rows
            .iter()
            .take(100)
            .map(|(r, _)| (r.clone(), 1))
            .collect();
        let plus = Update::with_multiplicities(fact_name.clone(), fact_rows.clone());
        let minus = Update::with_multiplicities(
            fact_name.clone(),
            fact_rows.iter().map(|(r, _)| (r.clone(), -1)).collect(),
        );
        let before = sharded.shard_stats().expect("shard stats");
        sharded.apply_update(&plus).expect("churn insert");
        sharded.apply_update(&minus).expect("churn undo");
        let after = sharded.shard_stats().expect("shard stats");
        for (shard, (b, a)) in before.iter().zip(after.iter()).enumerate() {
            assert_eq!(
                a.rehashes, b.rehashes,
                "{ctx}, N={shards}: shard {shard} rehashed a view table in steady state"
            );
            assert_eq!(
                a.ring_rehashes, b.ring_rehashes,
                "{ctx}, N={shards}: shard {shard} rehashed a ring-interior table in steady state"
            );
        }

        // The churn is algebraically a no-op; results must still agree.
        let got = sorted_entries(&sharded.result_relation().expect("sharded result"));
        assert_eq!(
            got.len(),
            expected.len(),
            "{ctx}, N={shards}: churn changed result cardinality"
        );
        for ((gk, gp), (ek, ep)) in got.iter().zip(expected.iter()) {
            assert_eq!(gk, ek);
            match agreement {
                Agreement::Exact => assert!(gp == ep, "{ctx}, N={shards}: churn changed result"),
                Agreement::Approx(tol) => assert!(gp.approx_eq(ep, tol)),
            }
        }
    }
}

/// Equi-width binnings for every continuous aggregate variable (identical
/// on both sides of the differential, which is all that matters here).
fn mi_binnings(spec: &fivm_query::QuerySpec) -> HashMap<usize, BinSpec> {
    let layout = AggregateLayout::of(spec);
    let mut bins = HashMap::new();
    for (pos, &v) in layout.vars.iter().enumerate() {
        if layout.kinds[pos].is_continuous() {
            bins.insert(v, BinSpec::new(0.0, 1_000.0, 8));
        }
    }
    bins
}

// ------------------------------------------------------------- workloads

/// Retailer: fact-table (hash-routed) updates interleaved with Item
/// dimension (broadcast) updates, re-chunked so bulk boundaries differ
/// from the generator's.
fn retailer_workload() -> (ViewTree, Database, Vec<Update>) {
    let cfg = RetailerConfig {
        locations: 8,
        dates: 12,
        items: 16,
        zips: 4,
        inventory_density: 0.2,
        seed: 11,
    };
    let db = cfg.generate();
    let fact = cfg
        .update_stream(StreamConfig {
            bulks: 4,
            bulk_size: 150,
            delete_fraction: 0.25,
            seed: 5,
        })
        .rechunk(120);
    let items = cfg.items as i64;
    let item = UpdateStream::generate(
        StreamConfig {
            bulks: 4,
            bulk_size: 12,
            delete_fraction: 0.2,
            seed: 6,
        },
        "Item",
        move |rng| {
            let category = rng.gen_range(0..9i64);
            tuple([
                Value::int(rng.gen_range(0..items)),
                Value::int(category * 10 + rng.gen_range(0..4i64)),
                Value::int(category),
                Value::int(category % 3),
                Value::double(rng.gen_range(0.5..80.0f64)),
            ])
        },
    );
    let updates = UpdateStream::interleave(vec![fact, item]);
    (retailer_tree(retailer_query_continuous()), db, updates)
}

fn favorita_workload() -> (ViewTree, Database, Vec<Update>) {
    let cfg = FavoritaConfig::tiny();
    let db = cfg.generate();
    let updates = cfg
        .update_stream(StreamConfig {
            bulks: 4,
            bulk_size: 120,
            delete_fraction: 0.25,
            seed: 9,
        })
        .rechunk(100)
        .into_bulks();
    let spec = fivm_data::favorita::favorita_query();
    (fivm_data::favorita::favorita_tree(spec), db, updates)
}

// ----------------------------------------------------------------- tests

#[test]
fn retailer_partition_plan_routes_the_snowflake_as_documented() {
    let (tree, _, _) = retailer_workload();
    let spec = tree.spec().clone();
    let engine = fivm_shard::apps::sharded_count_engine(tree, 2).unwrap();
    let plan = engine.shard_plan();
    assert_eq!(plan.partition_var(), spec.var_id("locn").unwrap());
    for (rel, expect_hashed) in [
        ("Inventory", true),
        ("Location", true),
        ("Weather", true),
        ("Census", false),
        ("Item", false),
    ] {
        let routing = plan.routing(spec.relation_id(rel).unwrap());
        assert_eq!(
            matches!(routing, RelationRouting::Hashed { .. }),
            expect_hashed,
            "unexpected routing for {rel}: {routing:?}"
        );
    }
}

#[test]
fn count_is_bit_for_bit_identical_on_both_datasets() {
    let (tree, db, updates) = retailer_workload();
    let spec = tree.spec().clone();
    let lifts = move |_: &RingCtx| fivm_core::apps::count_lifts(&spec);
    run_differential(&tree, &lifts, &db, &updates, Agreement::Exact, "Retailer/COUNT");

    let (tree, db, updates) = favorita_workload();
    let spec = tree.spec().clone();
    let lifts = move |_: &RingCtx| fivm_core::apps::count_lifts(&spec);
    run_differential(&tree, &lifts, &db, &updates, Agreement::Exact, "Favorita/COUNT");
}

#[test]
fn covar_is_bit_for_bit_identical_on_quantized_streams() {
    let (tree, db, updates) = retailer_workload();
    let spec = tree.spec().clone();
    let lifts = move |_: &RingCtx| fivm_core::apps::covar_lifts(&spec).unwrap();
    run_differential(
        &tree,
        &lifts,
        &quantize_database(&db),
        &quantize_updates(&updates),
        Agreement::Exact,
        "Retailer/COVAR-quantized",
    );

    let (tree, db, updates) = favorita_workload();
    let spec = tree.spec().clone();
    let lifts = move |ctx: &RingCtx| fivm_core::apps::gen_covar_lifts(&spec, ctx);
    run_differential(
        &tree,
        &lifts,
        &quantize_database(&db),
        &quantize_updates(&updates),
        Agreement::Exact,
        "Favorita/COVAR-quantized",
    );
}

#[test]
fn covar_agrees_to_tolerance_on_raw_streams() {
    // Unquantized floats: sharding re-associates sums, so agreement is up
    // to rounding (see the module docs); 1e-9 relative is far tighter than
    // any downstream ML use of the COVAR matrix.
    let (tree, db, updates) = retailer_workload();
    let spec = tree.spec().clone();
    let lifts = move |_: &RingCtx| fivm_core::apps::covar_lifts(&spec).unwrap();
    run_differential(&tree, &lifts, &db, &updates, Agreement::Approx(1e-9), "Retailer/COVAR-raw");

    let (tree, db, updates) = favorita_workload();
    let spec = tree.spec().clone();
    let lifts = move |ctx: &RingCtx| fivm_core::apps::gen_covar_lifts(&spec, ctx);
    run_differential(&tree, &lifts, &db, &updates, Agreement::Approx(1e-9), "Favorita/COVAR-raw");
}

#[test]
fn mi_is_bit_for_bit_identical_on_both_datasets() {
    // MI payloads are counts of binned values — integer-valued f64
    // arithmetic is exact in every addition order, so the raw streams
    // already merge bit-for-bit.
    let (tree, db, updates) = retailer_workload();
    let spec = tree.spec().clone();
    let bins = mi_binnings(&spec);
    let lifts = move |ctx: &RingCtx| fivm_core::apps::mi_lifts(&spec, &bins, ctx).unwrap();
    run_differential(&tree, &lifts, &db, &updates, Agreement::Exact, "Retailer/MI");

    let (tree, db, updates) = favorita_workload();
    let spec = tree.spec().clone();
    let bins = mi_binnings(&spec);
    let lifts = move |ctx: &RingCtx| fivm_core::apps::mi_lifts(&spec, &bins, ctx).unwrap();
    run_differential(&tree, &lifts, &db, &updates, Agreement::Exact, "Favorita/MI");
}
