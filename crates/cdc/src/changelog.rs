//! The CDC changelog: an append-only file of row-level change batches.
//!
//! Each record is one [`CdcBatch`] — a monotonically increasing sequence
//! number, a target table, and row operations ([`CdcOp`]): inserts,
//! deletes, and updates (an update is a delete of the old row plus an
//! insert of the new one, per the engine's delete-as-negative-insert
//! model).  Rows travel as **decoded** [`Value`]s, never as
//! dictionary-encoded words: on replay they re-encode through the
//! recovering engine's own dictionary exactly like live ingestion, which
//! is what keeps replayed state bit-identical to an uninterrupted run
//! (see the ring-key contract in ROADMAP.md).
//!
//! Durability unit: one batch = one framed record
//! ([`crate::framing`]), so a crash can only lose whole *suffixes* of
//! batches — a torn tail never splits a batch into a half-applied state.

use crate::error::{CdcError, CdcResult};
use crate::framing::{self, LogEnd};
use fivm_common::{wire, WireReader, WireResult};
use fivm_relation::{Tuple, Update};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Shared fsync-fault injector: each pending count > 0 makes the next
/// [`ChangelogWriter::sync`] fail (and poison the writer) instead of
/// reaching the disk.  Lives in the library — like [`crate::fault`] — so
/// integration tests and the service-level fault suite can arm it through
/// [`crate::ServiceConfig`].
pub type SyncFaults = Arc<AtomicU32>;

/// Changelog file magic.
pub const CHANGELOG_MAGIC: &[u8; 4] = b"FVCL";

/// Changelog format version.
pub const CHANGELOG_VERSION: u32 = 1;

/// One row-level change operation.
#[derive(Debug, Clone, PartialEq)]
pub enum CdcOp {
    /// Insert `count` copies of `row`.
    Insert { row: Tuple, count: u32 },
    /// Delete `count` copies of `row`.
    Delete { row: Tuple, count: u32 },
    /// Replace `old` with `new` (delete + insert under one op).
    Update { old: Tuple, new: Tuple },
}

/// One durable change batch: the changelog's record type.
#[derive(Debug, Clone, PartialEq)]
pub struct CdcBatch {
    /// Monotonic batch sequence number; recovery replays batches with
    /// `seq` greater than the snapshot's.
    pub seq: u64,
    /// The base table the batch addresses (by name, like
    /// [`Update::table`]).
    pub table: String,
    /// Row operations, applied in order.
    pub ops: Vec<CdcOp>,
}

impl CdcBatch {
    /// Converts an engine [`Update`] into a batch: positive multiplicities
    /// become inserts, negative ones deletes.  Zero-multiplicity rows are
    /// no-ops to the engine and are not logged.
    pub fn from_update(seq: u64, update: &Update) -> CdcBatch {
        let ops = update
            .rows
            .iter()
            .filter(|(_, m)| *m != 0)
            .map(|(row, m)| {
                if *m > 0 {
                    CdcOp::Insert { row: row.clone(), count: *m as u32 }
                } else {
                    CdcOp::Delete { row: row.clone(), count: m.unsigned_abs() as u32 }
                }
            })
            .collect();
        CdcBatch {
            seq,
            table: update.table.clone(),
            ops,
        }
    }

    /// Lowers the batch back to `(row, multiplicity)` pairs in op order —
    /// the exact shape live ingestion feeds the engine, so replay
    /// preserves the delta-accumulation order of the original run.
    pub fn to_rows(&self) -> Vec<(Tuple, i64)> {
        let mut rows = Vec::with_capacity(self.ops.len());
        for op in &self.ops {
            match op {
                CdcOp::Insert { row, count } => rows.push((row.clone(), *count as i64)),
                CdcOp::Delete { row, count } => rows.push((row.clone(), -(*count as i64))),
                CdcOp::Update { old, new } => {
                    rows.push((old.clone(), -1));
                    rows.push((new.clone(), 1));
                }
            }
        }
        rows
    }

    /// The batch as an [`Update`] addressed to its table.
    pub fn to_update(&self) -> Update {
        Update::with_multiplicities(self.table.clone(), self.to_rows())
    }

    /// Serializes the batch into a record payload.
    pub fn encode(&self, out: &mut Vec<u8>) {
        wire::put_u64(out, self.seq);
        wire::put_str(out, &self.table);
        wire::put_u32(out, self.ops.len() as u32);
        for op in &self.ops {
            match op {
                CdcOp::Insert { row, count } => {
                    wire::put_u8(out, 0);
                    put_tuple(out, row);
                    wire::put_u32(out, *count);
                }
                CdcOp::Delete { row, count } => {
                    wire::put_u8(out, 1);
                    put_tuple(out, row);
                    wire::put_u32(out, *count);
                }
                CdcOp::Update { old, new } => {
                    wire::put_u8(out, 2);
                    put_tuple(out, old);
                    put_tuple(out, new);
                }
            }
        }
    }

    /// Decodes one record payload written by [`CdcBatch::encode`].
    pub fn decode(r: &mut WireReader<'_>) -> WireResult<CdcBatch> {
        let seq = r.u64()?;
        let table = r.str()?.to_string();
        let nops = r.u32()? as usize;
        if nops > r.remaining() {
            return Err(fivm_common::WireError::Malformed("op count out of range"));
        }
        let mut ops = Vec::with_capacity(nops);
        for _ in 0..nops {
            ops.push(match r.u8()? {
                0 => CdcOp::Insert { row: read_tuple(r)?, count: r.u32()? },
                1 => CdcOp::Delete { row: read_tuple(r)?, count: r.u32()? },
                2 => CdcOp::Update { old: read_tuple(r)?, new: read_tuple(r)? },
                _ => return Err(fivm_common::WireError::Malformed("CDC op tag out of range")),
            });
        }
        Ok(CdcBatch { seq, table, ops })
    }
}

/// Writes one row as `arity` + decoded values.
fn put_tuple(out: &mut Vec<u8>, row: &Tuple) {
    wire::put_u32(out, row.len() as u32);
    for v in row.iter() {
        wire::put_value(out, v);
    }
}

/// Reads a row written by [`put_tuple`].
fn read_tuple(r: &mut WireReader<'_>) -> WireResult<Tuple> {
    let arity = r.u32()? as usize;
    if arity > r.remaining() {
        return Err(fivm_common::WireError::Malformed("row arity out of range"));
    }
    let mut vals = Vec::with_capacity(arity);
    for _ in 0..arity {
        vals.push(wire::read_value(r)?);
    }
    Ok(vals.into_boxed_slice())
}

/// Appends framed [`CdcBatch`] records to a changelog file.
///
/// Two write disciplines are offered:
///
/// * [`ChangelogWriter::append`] — one durable write per batch (write +
///   `fsync`), the per-batch discipline [`crate::DurableEngine`] uses;
/// * [`ChangelogWriter::append_unsynced`] + [`ChangelogWriter::sync`] —
///   group commit: many appends share one `fsync`, amortizing the
///   durability cost.  Nothing appended is durable (and nothing may be
///   acknowledged) until the `sync` returns `Ok`.
///
/// **Poisoning.**  After *any* append or sync failure the writer enters a
/// poisoned state and refuses all further work with
/// [`CdcError::Poisoned`].  This is load-bearing for the write-ahead
/// guarantee: after a failed `fsync` the kernel may have dropped the dirty
/// pages, so retrying the sync could report success without the earlier
/// bytes ever reaching disk — the only safe continuation is recovery from
/// the on-disk prefix.
pub struct ChangelogWriter {
    file: File,
    next_seq: u64,
    /// File length in bytes (header + every appended record, synced or
    /// not) — segment rotation decisions read this instead of stat-ing.
    len: u64,
    /// Set on the first append/sync failure; never cleared.
    poisoned: bool,
    sync_faults: Option<SyncFaults>,
}

impl ChangelogWriter {
    /// Creates a fresh changelog (truncating any previous file) and writes
    /// its header.  Sequence numbers start at 1.
    pub fn create(path: impl AsRef<Path>) -> CdcResult<ChangelogWriter> {
        Self::create_at(path, 1)
    }

    /// Creates a fresh changelog whose first batch will carry `first_seq`
    /// — a rotated *segment* continuing an existing sequence.
    pub fn create_at(path: impl AsRef<Path>, first_seq: u64) -> CdcResult<ChangelogWriter> {
        assert!(first_seq >= 1, "changelog sequence numbers start at 1");
        let mut file = File::create(path)?;
        let mut header = Vec::with_capacity(framing::HEADER_LEN);
        framing::put_header(&mut header, CHANGELOG_MAGIC, CHANGELOG_VERSION);
        file.write_all(&header)?;
        file.sync_data()?;
        Ok(ChangelogWriter {
            file,
            next_seq: first_seq,
            len: framing::HEADER_LEN as u64,
            poisoned: false,
            sync_faults: None,
        })
    }

    /// Reopens an existing changelog for appending, continuing after the
    /// last durable batch.  The valid prefix determines the next sequence
    /// number; a torn tail from an earlier crash is ignored — its bytes
    /// are overwritten by truncating to the valid prefix first, so the
    /// file never accretes garbage between valid records.
    pub fn open_append(path: impl AsRef<Path>) -> CdcResult<ChangelogWriter> {
        Self::open_append_at(path, 1)
    }

    /// [`ChangelogWriter::open_append`] for a segment that may be *empty*
    /// (rotation crashed before its first append): with no valid records,
    /// the next sequence number is `base_seq` — the number the segment was
    /// rotated to carry — instead of 1.
    pub fn open_append_at(path: impl AsRef<Path>, base_seq: u64) -> CdcResult<ChangelogWriter> {
        let path = path.as_ref();
        let (batches, end) = read_changelog(path)?;
        let next_seq = batches.last().map_or(base_seq, |b| b.seq + 1);
        let valid_len = match end {
            LogEnd::Clean => None,
            LogEnd::TornTail { valid_len } | LogEnd::Corrupt { valid_len } => Some(valid_len),
        };
        let file = OpenOptions::new().write(true).open(path)?;
        if let Some(len) = valid_len {
            file.set_len(len as u64)?;
        }
        let mut w = ChangelogWriter {
            file,
            next_seq,
            len: 0,
            poisoned: false,
            sync_faults: None,
        };
        use std::io::Seek;
        w.len = w.file.seek(std::io::SeekFrom::End(0))?;
        Ok(w)
    }

    /// The sequence number the next appended batch will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// File length in bytes (header plus every appended record).
    pub fn file_len(&self) -> u64 {
        self.len
    }

    /// Whether an earlier append/sync failure poisoned this writer.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Arms the fsync fault injector: while `faults` holds a non-zero
    /// count, each [`ChangelogWriter::sync`] decrements it and fails
    /// (poisoning the writer) instead of syncing.
    pub fn set_sync_faults(&mut self, faults: SyncFaults) {
        self.sync_faults = Some(faults);
    }

    fn check_poisoned(&self) -> CdcResult<()> {
        if self.poisoned {
            return Err(CdcError::Poisoned(
                "changelog writer refused: an earlier append or fsync failed".into(),
            ));
        }
        Ok(())
    }

    /// Appends one update as a durable batch and returns its sequence
    /// number.  The record is written and synced before this returns —
    /// once it returns, a crash cannot lose the batch.
    pub fn append_update(&mut self, update: &Update) -> CdcResult<u64> {
        let batch = CdcBatch::from_update(self.next_seq, update);
        self.append(&batch)?;
        Ok(batch.seq)
    }

    /// Appends one pre-built batch (its `seq` must be the writer's next)
    /// and syncs it — one durable write per batch.
    pub fn append(&mut self, batch: &CdcBatch) -> CdcResult<()> {
        self.append_unsynced(batch)?;
        self.sync()
    }

    /// Appends one batch *without* syncing.  The batch is **not durable**
    /// until a later [`ChangelogWriter::sync`] returns `Ok` — group commit
    /// amortizes that sync over many appends, and the caller must not
    /// acknowledge any of them before it.
    pub fn append_unsynced(&mut self, batch: &CdcBatch) -> CdcResult<()> {
        self.check_poisoned()?;
        assert_eq!(
            batch.seq, self.next_seq,
            "changelog batches must be appended in sequence"
        );
        let mut payload = Vec::new();
        batch.encode(&mut payload);
        let mut framed = Vec::with_capacity(payload.len() + framing::RECORD_OVERHEAD);
        framing::put_record(&mut framed, &payload);
        if let Err(e) = self.file.write_all(&framed) {
            self.poisoned = true;
            return Err(e.into());
        }
        self.len += framed.len() as u64;
        self.next_seq += 1;
        Ok(())
    }

    /// Syncs every appended record to disk.  On `Ok`, everything appended
    /// so far is durable; on `Err`, the writer is poisoned — whether the
    /// pending bytes reached the disk is unknowable, so no batch appended
    /// since the last successful sync may be acknowledged, ever.
    pub fn sync(&mut self) -> CdcResult<()> {
        self.check_poisoned()?;
        if let Some(faults) = &self.sync_faults {
            if faults
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                self.poisoned = true;
                return Err(CdcError::Io(std::io::Error::other(
                    "injected fsync failure (sync fault hook)",
                )));
            }
        }
        if let Err(e) = self.file.sync_data() {
            self.poisoned = true;
            return Err(e.into());
        }
        Ok(())
    }
}

/// Reads a changelog: every batch of the valid prefix, plus how the scan
/// ended (a torn or corrupt tail is data for the caller, not an error —
/// the batches after the damage point were never durable).
///
/// Fails only on I/O errors, a damaged *header*, or a record that passes
/// its checksum yet does not decode (a writer bug, not a crash artifact).
pub fn read_changelog(path: impl AsRef<Path>) -> CdcResult<(Vec<CdcBatch>, LogEnd)> {
    let bytes = std::fs::read(path)?;
    let start = framing::check_header(&bytes, CHANGELOG_MAGIC, CHANGELOG_VERSION)?;
    let (payloads, end) = framing::scan_records(&bytes, start);
    let mut batches = Vec::with_capacity(payloads.len());
    let mut prev_seq = 0u64;
    for p in payloads {
        let mut r = WireReader::new(p);
        let batch = CdcBatch::decode(&mut r)?;
        if !r.is_empty() {
            return Err(CdcError::Corrupt("trailing bytes in changelog record".into()));
        }
        if batch.seq <= prev_seq {
            return Err(CdcError::Corrupt(format!(
                "changelog sequence went backwards: {} after {prev_seq}",
                batch.seq
            )));
        }
        prev_seq = batch.seq;
        batches.push(batch);
    }
    Ok((batches, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_common::Value;
    use fivm_relation::tuple;

    fn row(vals: &[i64]) -> Tuple {
        tuple(vals.iter().map(|&v| Value::int(v)))
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fivm_cdc_changelog_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn batches_round_trip_through_a_file() {
        let dir = tempdir("roundtrip");
        let path = dir.join("log");
        let mut w = ChangelogWriter::create(&path).unwrap();
        let u1 = Update::inserts("Inventory", vec![row(&[1, 2]), row(&[3, 4])]);
        let u2 = Update::with_multiplicities("Inventory", vec![(row(&[1, 2]), -1)]);
        assert_eq!(w.append_update(&u1).unwrap(), 1);
        assert_eq!(w.append_update(&u2).unwrap(), 2);
        let mixed = CdcBatch {
            seq: 3,
            table: "Item".into(),
            ops: vec![
                CdcOp::Update { old: row(&[7, 8]), new: row(&[7, 9]) },
                CdcOp::Insert { row: row(&[10, 11]), count: 3 },
            ],
        };
        w.append(&mixed).unwrap();

        let (batches, end) = read_changelog(&path).unwrap();
        assert!(end.is_clean());
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].to_update().table, u1.table);
        assert_eq!(batches[0].to_update().rows, u1.rows);
        assert_eq!(batches[1].to_update().rows, u2.rows);
        assert_eq!(batches[2], mixed);
        assert_eq!(
            batches[2].to_rows(),
            vec![(row(&[7, 8]), -1), (row(&[7, 9]), 1), (row(&[10, 11]), 3)]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopening_continues_the_sequence_and_drops_torn_tails() {
        let dir = tempdir("reopen");
        let path = dir.join("log");
        let mut w = ChangelogWriter::create(&path).unwrap();
        w.append_update(&Update::inserts("T", vec![row(&[1])])).unwrap();
        w.append_update(&Update::inserts("T", vec![row(&[2])])).unwrap();
        drop(w);

        // Tear the tail: cut 3 bytes off the second record.
        let len = std::fs::metadata(&path).unwrap().len();
        crate::fault::truncate_tail(&path, 3).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len - 3);

        let mut w = ChangelogWriter::open_append(&path).unwrap();
        assert_eq!(w.next_seq(), 2, "torn batch 2 was never durable");
        w.append_update(&Update::inserts("T", vec![row(&[3])])).unwrap();
        let (batches, end) = read_changelog(&path).unwrap();
        assert!(end.is_clean(), "reopen truncated the torn bytes");
        assert_eq!(batches.iter().map(|b| b.seq).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(batches[1].to_rows(), vec![(row(&[3]), 1)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_failed_fsync_poisons_the_writer_for_good() {
        let dir = tempdir("poison");
        let path = dir.join("log");
        let mut w = ChangelogWriter::create(&path).unwrap();
        w.append_update(&Update::inserts("T", vec![row(&[1])])).unwrap();

        // Arm one injected fsync failure: the append's write lands in the
        // file, the sync fails, the batch must never be acknowledged.
        let faults: SyncFaults = Arc::new(AtomicU32::new(1));
        w.set_sync_faults(Arc::clone(&faults));
        let err = w.append_update(&Update::inserts("T", vec![row(&[2])])).unwrap_err();
        assert_eq!(err.kind(), "io", "{err}");
        assert!(w.is_poisoned());
        assert_eq!(faults.load(Ordering::SeqCst), 0, "one fault consumed");

        // The hook is spent, a retry *could* sync — but the writer must
        // refuse: after a failed fsync the earlier bytes' durability is
        // unknowable, and a silent retry would forge the write-ahead ack.
        let err = w.append_update(&Update::inserts("T", vec![row(&[3])])).unwrap_err();
        assert_eq!(err.kind(), "poisoned", "{err}");
        let err = w.sync().unwrap_err();
        assert_eq!(err.kind(), "poisoned", "{err}");
        drop(w);

        // Reopening recovers the durable prefix: batch 1 for sure; batch 2
        // may or may not have reached the disk (its sync failed), but the
        // log is structurally valid either way and the sequence continues.
        let w = ChangelogWriter::open_append(&path).unwrap();
        assert!(w.next_seq() == 2 || w.next_seq() == 3);
        let (batches, _) = read_changelog(&path).unwrap();
        assert_eq!(batches[0].to_rows(), vec![(row(&[1]), 1)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_appends_are_invisible_until_sync() {
        let dir = tempdir("group");
        let path = dir.join("log");
        let mut w = ChangelogWriter::create(&path).unwrap();
        let before = w.file_len();
        w.append_unsynced(&CdcBatch::from_update(1, &Update::inserts("T", vec![row(&[1])])))
            .unwrap();
        w.append_unsynced(&CdcBatch::from_update(2, &Update::inserts("T", vec![row(&[2])])))
            .unwrap();
        assert!(w.file_len() > before);
        w.sync().unwrap();
        assert_eq!(w.next_seq(), 3);
        let (batches, end) = read_changelog(&path).unwrap();
        assert!(end.is_clean());
        assert_eq!(batches.len(), 2);
        assert_eq!(
            w.file_len(),
            std::fs::metadata(&path).unwrap().len(),
            "writer length tracking matches the file"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_multiplicity_rows_are_not_logged() {
        let u = Update::with_multiplicities("T", vec![(row(&[1]), 0), (row(&[2]), 2)]);
        let b = CdcBatch::from_update(5, &u);
        assert_eq!(b.ops.len(), 1);
        assert_eq!(b.to_rows(), vec![(row(&[2]), 2)]);
    }
}
