//! Crash recovery: latest valid snapshot + segmented changelog replay.
//!
//! The recovered engine is **bit-identical** to an uninterrupted engine
//! that applied the same durable prefix, because every piece of the
//! pipeline preserves exact state:
//!
//! * the snapshot stores ring payloads as raw bits and the dictionary's
//!   strings in id order, so restore reproduces the exact views and the
//!   exact encoded words ([`fivm_core::Engine::load_state`]);
//! * replayed batches carry decoded rows and flow through
//!   [`fivm_core::Engine::apply_update`] — the same code path, in the
//!   same batch and row order, as live ingestion;
//! * a torn or corrupt tail in the **active** (newest) changelog segment
//!   marks where durability ended; the batches before it are applied, the
//!   bytes after it are treated as never written.  Damage in a *sealed*
//!   segment is a loud [`CdcError::Corrupt`] instead — those bytes were
//!   fully synced at rotation, so the damage is bit rot, and silently
//!   skipping it would drop acknowledged batches (see [`crate::segment`]).
//!
//! The changelog is a **directory** of size-bounded segments; replay
//! walks them in sequence order, enforcing exact sequence continuity
//! across segment boundaries, and a gap between the snapshot and the
//! oldest retained segment (a snapshot older than retirement assumed) is
//! an error, not a silent skip.
//!
//! What is *not* identical: work counters ([`fivm_core::EngineStats`])
//! restart from the snapshot point, and `rehashes` / `ring_rehashes` are
//! 0 right after a restore (pre-sized tables, stored hashes) — which is
//! the hash-once contract carrying over a restart, not a divergence.

use crate::changelog::CdcBatch;
use crate::error::{CdcError, CdcResult};
use crate::framing::LogEnd;
use crate::segment::read_log_dir;
use crate::snapshot::load_snapshot;
use fivm_core::Engine;
use fivm_relation::Database;
use fivm_ring::PersistRing;
use std::path::Path;

/// What a recovery did, for logging and assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number restored from the snapshot (`None` = no snapshot;
    /// the base database was re-loaded and the full changelog replayed).
    pub snapshot_seq: Option<u64>,
    /// Batches replayed from the changelog tail.
    pub replayed_batches: usize,
    /// Rows those batches carried.
    pub replayed_rows: usize,
    /// Highest sequence number applied into the engine (0 = none).
    pub last_seq: u64,
    /// How the changelog scan ended; [`LogEnd::Clean`] unless the active
    /// segment has a torn or corrupt tail (whose suffix was skipped as
    /// never-durable).
    pub log_end: LogEnd,
    /// Changelog segment files scanned.
    pub segments_scanned: usize,
}

/// Rebuilds engine state into `engine`, which must be freshly constructed
/// with the same plan, ring and lifts as the engine that wrote the files.
///
/// `log_dir` is the durable directory holding the changelog segments
/// (`changelog-<seq>.fvcl`).  With a snapshot: base-table layouts are
/// re-bound from `db`'s schemas, the snapshot state is restored, and
/// changelog batches with `seq` greater than the snapshot's are replayed.
/// Without one: `db` is loaded from scratch (binding included) and the
/// whole changelog is replayed — so recovery works from any prefix of the
/// durable artifacts, including "log only".
///
/// Fails with [`CdcError::Corrupt`] when the retained segments cannot
/// reach the snapshot: the oldest segment starts past `snapshot_seq + 1`
/// (its predecessors were retired against a *newer* snapshot than the one
/// supplied), or there is no snapshot and the log does not start at 1.
///
/// `db` must be the same base database the original engine loaded; its
/// *rows* are only read in the no-snapshot path, but its schemas define
/// the row layout replayed batches are interpreted under in both paths.
pub fn recover<R: PersistRing>(
    engine: &mut Engine<R>,
    db: &Database,
    snapshot: Option<&Path>,
    log_dir: &Path,
) -> CdcResult<RecoveryReport> {
    let scan = read_log_dir(log_dir)?;
    let snapshot_seq = match snapshot {
        Some(path) => {
            // Bindings are part of the engine-construction recipe, not the
            // snapshot (see `Engine::save_state`); re-bind before restore.
            let spec = engine.tree().spec().clone();
            for rel in 0..spec.num_relations() {
                let name = &spec.relation(rel).name;
                let table = db.table(name).ok_or_else(|| {
                    CdcError::Corrupt(format!(
                        "recovery database has no table named `{name}`"
                    ))
                })?;
                engine.bind_table(rel, &table.schema)?;
            }
            Some(load_snapshot(path, engine)?)
        }
        None => {
            engine.load_database(db)?;
            None
        }
    };
    let from = snapshot_seq.unwrap_or(0);
    if let Some(oldest) = scan.oldest_seq {
        if oldest > from + 1 {
            return Err(CdcError::Corrupt(format!(
                "changelog starts at seq {oldest} but the supplied snapshot covers only \
                 through seq {from}: the intervening segments were retired against a \
                 newer snapshot — recover with that snapshot instead"
            )));
        }
    }
    let mut report = RecoveryReport {
        snapshot_seq,
        replayed_batches: 0,
        replayed_rows: 0,
        last_seq: from,
        log_end: scan.end,
        segments_scanned: scan.segments,
    };
    for batch in &scan.batches {
        if batch.seq <= from {
            continue;
        }
        replay_batch(engine, batch)?;
        report.replayed_batches += 1;
        report.replayed_rows += batch.ops.len();
        report.last_seq = batch.seq;
    }
    Ok(report)
}

/// Applies one changelog batch through the live-ingestion path.
fn replay_batch<R: PersistRing>(engine: &mut Engine<R>, batch: &CdcBatch) -> CdcResult<()> {
    engine.apply_update(&batch.to_update())?;
    Ok(())
}
