//! Fault injection for the recovery test suite: file-level damage of the
//! kinds a crash or failing disk actually produces.
//!
//! These helpers mutate durable files in place so tests can assert the
//! reader-side classification (torn tail vs. corrupt record vs. clean)
//! and the recovery outcome under each.  They live in the library — not
//! the test tree — so the bench harness (`exp_recovery`) and downstream
//! crates can reuse them.

use crate::error::CdcResult;
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Current length of a durable file in bytes.
pub fn file_len(path: impl AsRef<Path>) -> CdcResult<u64> {
    Ok(std::fs::metadata(path)?.len())
}

/// Simulates a crash mid-write (short write / torn append): cuts `bytes`
/// off the end of the file.
pub fn truncate_tail(path: impl AsRef<Path>, bytes: u64) -> CdcResult<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    let len = file.metadata()?.len();
    file.set_len(len.saturating_sub(bytes))?;
    file.sync_data()?;
    Ok(())
}

/// Truncates the file to exactly `len` bytes (crash at a chosen offset).
pub fn truncate_to(path: impl AsRef<Path>, len: u64) -> CdcResult<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(len)?;
    file.sync_data()?;
    Ok(())
}

/// Simulates bit rot / a buggy writer: XORs `mask` into the byte at
/// `offset` (from the start of the file; `mask` must be non-zero so the
/// byte actually changes).
pub fn flip_byte(path: impl AsRef<Path>, offset: u64, mask: u8) -> CdcResult<()> {
    assert_ne!(mask, 0, "a zero mask would leave the file unchanged");
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    let mut byte = [0u8; 1];
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(&mut byte)?;
    byte[0] ^= mask;
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(&byte)?;
    file.sync_data()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injectors_mutate_files_as_described() {
        let path = std::env::temp_dir().join(format!("fivm_cdc_fault_{}", std::process::id()));
        std::fs::write(&path, [0u8, 1, 2, 3, 4, 5, 6, 7]).unwrap();
        assert_eq!(file_len(&path).unwrap(), 8);
        truncate_tail(&path, 3).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![0, 1, 2, 3, 4]);
        flip_byte(&path, 1, 0xFF).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![0, 0xFE, 2, 3, 4]);
        truncate_to(&path, 2).unwrap();
        assert_eq!(file_len(&path).unwrap(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
