//! CRC-32 (IEEE 802.3), table-driven, built in-tree.
//!
//! The build environment has no network access (see `crates/shims/`), so
//! the checksum the changelog and snapshot framing depend on is
//! implemented here rather than pulled from crates.io.  This is the
//! standard reflected CRC-32 with polynomial `0xEDB88320` — the same
//! function `zip`, `png` and Ethernet use — so files are checkable with
//! any external `crc32` tool.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// One-byte-at-a-time lookup table, computed at compile time.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (full init/finalize; matches `crc32()` everywhere).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard check values for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = crc32(b"payload bytes");
        let mut tampered = b"payload bytes".to_vec();
        for byte in 0..tampered.len() {
            for bit in 0..8u8 {
                tampered[byte] ^= 1 << bit;
                assert_ne!(crc32(&tampered), base, "flip at {byte}:{bit} undetected");
                tampered[byte] ^= 1 << bit;
            }
        }
    }
}
