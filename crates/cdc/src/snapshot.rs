//! Engine snapshots: one atomic, checksummed file per save point.
//!
//! A snapshot file is the framing header plus a **single** framed record
//! whose payload is `u64 seq` followed by the engine-state bytes from
//! [`fivm_core::Engine::save_state`] (plan fingerprint, dictionary, and
//! every view's `(hash, key, payload)` entries).  `seq` is the changelog
//! sequence number the state includes; recovery replays batches with
//! greater sequence numbers on top.
//!
//! Atomicity: the file is written to a `.tmp` sibling, synced, and then
//! renamed over the target.  A crash mid-save leaves either the previous
//! snapshot intact or a stray `.tmp` — never a half-written file under
//! the snapshot's name.  Together with the record checksum (which catches
//! damage *after* a completed rename) a reader can always classify a
//! snapshot as usable or not.

use crate::error::{CdcError, CdcResult};
use crate::framing;
use fivm_common::wire;
use fivm_core::Engine;
use fivm_ring::PersistRing;
use std::io::Write;
use std::path::Path;

/// Snapshot file magic.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"FVSN";

/// Snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Serializes `engine` (which has applied the changelog through `seq`)
/// into the snapshot wire form.
pub fn encode_snapshot<R: PersistRing>(seq: u64, engine: &Engine<R>) -> Vec<u8> {
    let mut payload = Vec::new();
    wire::put_u64(&mut payload, seq);
    engine.save_state(&mut payload);
    let mut out = Vec::with_capacity(payload.len() + framing::HEADER_LEN + framing::RECORD_OVERHEAD);
    framing::put_header(&mut out, SNAPSHOT_MAGIC, SNAPSHOT_VERSION);
    framing::put_record(&mut out, &payload);
    out
}

/// Writes a snapshot atomically: temp file, sync, rename.
pub fn write_snapshot<R: PersistRing>(
    path: impl AsRef<Path>,
    seq: u64,
    engine: &Engine<R>,
) -> CdcResult<()> {
    let path = path.as_ref();
    let bytes = encode_snapshot(seq, engine);
    let tmp = path.with_extension("tmp");
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_data()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and validates a snapshot file, returning its sequence number and
/// the raw engine-state bytes.  Unlike a changelog tail, *any* damage to a
/// snapshot is an error — a snapshot is written atomically, so a torn or
/// corrupt one was either tampered with or hit bit rot, and recovery
/// should fall back to an older snapshot or a full replay.
pub fn read_snapshot(path: impl AsRef<Path>) -> CdcResult<(u64, Vec<u8>)> {
    let bytes = std::fs::read(path)?;
    let start = framing::check_header(&bytes, SNAPSHOT_MAGIC, SNAPSHOT_VERSION)?;
    let (payloads, end) = framing::scan_records(&bytes, start);
    if !end.is_clean() || payloads.len() != 1 {
        return Err(CdcError::Corrupt(format!(
            "snapshot must be exactly one intact record (found {} records, end {end:?})",
            payloads.len()
        )));
    }
    let payload = payloads[0];
    let mut r = fivm_common::WireReader::new(payload);
    let seq = r.u64()?;
    let state_start = payload.len() - r.remaining();
    Ok((seq, payload[state_start..].to_vec()))
}

/// Restores a snapshot into `engine` (freshly constructed, same plan and
/// ring — see [`Engine::load_state`]) and returns the sequence number the
/// restored state includes.
pub fn load_snapshot<R: PersistRing>(
    path: impl AsRef<Path>,
    engine: &mut Engine<R>,
) -> CdcResult<u64> {
    let (seq, state) = read_snapshot(path)?;
    engine.load_state(&state)?;
    Ok(seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_files_validate_their_single_record() {
        // Hand-build a malformed snapshot: two records.
        let mut bytes = Vec::new();
        framing::put_header(&mut bytes, SNAPSHOT_MAGIC, SNAPSHOT_VERSION);
        framing::put_record(&mut bytes, &[1, 2, 3]);
        framing::put_record(&mut bytes, &[4]);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("fivm_cdc_snap_two_{}", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let err = read_snapshot(&path).unwrap_err();
        assert_eq!(err.kind(), "corrupt");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_snapshot_is_an_io_error() {
        let err = read_snapshot("/nonexistent/fivm/snapshot").unwrap_err();
        assert_eq!(err.kind(), "io");
    }
}
