//! The CDC service front end: a bounded ingest queue feeding a durable
//! engine through group commit, with segment rotation, snapshot
//! scheduling, and retirement driven from the commit loop.
//!
//! Shape: producers call [`CdcService::submit`] from any thread; a single
//! **commit thread** owns the engine and the segmented changelog and
//! drains the queue in *groups*:
//!
//! ```text
//! submit() → [bounded queue] → drain ≤ group_commit_max
//!                              → N × append_unsynced → 1 × fsync   (durable)
//!                              → N × engine.apply_update           (applied)
//!                              → snapshot?  → retire old segments
//! ```
//!
//! **Group commit ack rule.**  Nothing is acknowledged until the group's
//! single `fsync` returns `Ok` — [`CdcService::durable_seq`] only
//! advances past a batch after the sync that covers it, and
//! [`CdcService::flush`] returns only once every accepted batch is both
//! durable and applied.  If any append, sync, or apply fails, the service
//! **poisons**: every later call returns [`CdcError::Poisoned`], and no
//! batch after the failure is ever acknowledged (see
//! [`crate::changelog::ChangelogWriter`] for why a failed fsync cannot be
//! retried).
//!
//! **Backpressure.**  The queue holds at most `queue_capacity` pending
//! batches (one in-flight commit group may be buffered beyond that).
//! When it is full, [`BackpressurePolicy`] decides: block with a
//! deadline, reject with a typed error, or shed the oldest *pending*
//! batch (lossy sources).  A shed batch is never appended, applied, or
//! acknowledged — [`ServiceStats::shed_batches`] counts the loss.
//!
//! **Snapshot scheduling.**  After each applied group the loop checks the
//! log-growth policy (`snapshot_every_bytes` / `snapshot_every_batches`);
//! when due it writes an atomic snapshot at the just-applied sequence
//! number and retires every sealed segment the snapshot covers, which is
//! what bounds disk under an infinite churn stream.
//!
//! Shutdown drains: batches accepted before [`CdcService::shutdown`] are
//! still committed durably and applied; submissions racing shutdown get
//! [`CdcError::Shutdown`] and were *not* enqueued.

use crate::changelog::SyncFaults;
use crate::error::{CdcError, CdcResult};
use crate::segment::{SegmentedLog, DEFAULT_SEGMENT_BYTES};
use crate::snapshot::write_snapshot;
use crate::{remove_if_exists, RecoveryReport, SNAPSHOT_FILE};
use fivm_core::Engine;
use fivm_relation::{Database, Update};
use fivm_ring::PersistRing;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What [`CdcService::submit`] does when the bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Wait up to `deadline` for the commit thread to free space, then
    /// fail with [`CdcError::Backpressure`].  The default: lossless, and
    /// a stalled engine surfaces as submit latency instead of memory
    /// growth.
    Block { deadline: Duration },
    /// Fail immediately with [`CdcError::Backpressure`]; the caller owns
    /// the retry loop.
    Reject,
    /// Drop the **oldest pending** batch to make room (it is counted in
    /// [`ServiceStats::shed_batches`] and never acknowledged), then
    /// enqueue the new one.  For lossy sources where freshness beats
    /// completeness; never sheds a batch already in a commit group.
    ShedOldest,
}

/// Configuration for [`CdcService::start`].
#[derive(Clone)]
pub struct ServiceConfig {
    /// Maximum pending (not yet drained) batches; `submit` applies the
    /// backpressure policy beyond this.
    pub queue_capacity: usize,
    /// What `submit` does when the queue is full.
    pub backpressure: BackpressurePolicy,
    /// Maximum batches coalesced under one changelog fsync.
    pub group_commit_max: usize,
    /// Changelog segment rotation threshold in bytes.
    pub max_segment_bytes: u64,
    /// Snapshot after this many appended changelog bytes (`None` = no
    /// byte trigger).
    pub snapshot_every_bytes: Option<u64>,
    /// Snapshot after this many applied batches (`None` = no batch
    /// trigger).
    pub snapshot_every_batches: Option<u64>,
    /// Whether to delete sealed segments a snapshot has made obsolete.
    pub retire_segments: bool,
    /// Fault hook: injected fsync failures (see
    /// [`crate::changelog::ChangelogWriter::set_sync_faults`]).
    pub sync_faults: Option<SyncFaults>,
    /// Fault hook: when set, the commit thread waits for the gate to be
    /// open before draining each group — tests close it to deterministically
    /// fill the queue (stalled-engine scenarios).
    pub commit_gate: Option<CommitGate>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 1024,
            backpressure: BackpressurePolicy::Block { deadline: Duration::from_secs(10) },
            group_commit_max: 64,
            max_segment_bytes: DEFAULT_SEGMENT_BYTES,
            snapshot_every_bytes: None,
            snapshot_every_batches: None,
            retire_segments: true,
            sync_faults: None,
            commit_gate: None,
        }
    }
}

/// A gate the commit thread must find open before draining a group.
/// Cloning shares the gate.  Purely a test/fault hook: production
/// configurations leave [`ServiceConfig::commit_gate`] unset.
#[derive(Clone)]
pub struct CommitGate(Arc<(Mutex<bool>, Condvar)>);

impl CommitGate {
    /// A new gate in the open (non-blocking) position.
    pub fn open_gate() -> CommitGate {
        CommitGate(Arc::new((Mutex::new(true), Condvar::new())))
    }

    /// A new gate in the closed position: the commit thread stalls before
    /// its next group until [`CommitGate::open`] is called.
    pub fn closed_gate() -> CommitGate {
        CommitGate(Arc::new((Mutex::new(false), Condvar::new())))
    }

    /// Opens the gate, releasing a stalled commit thread.
    pub fn open(&self) {
        let (_, cv) = &*self.0;
        *self.flag() = true;
        cv.notify_all();
    }

    /// Closes the gate: the commit thread stalls before its *next* group
    /// (a group already past the gate finishes normally).
    pub fn close(&self) {
        *self.flag() = false;
    }

    fn wait_open(&self) {
        let (_, cv) = &*self.0;
        let mut open = self.flag();
        while !*open {
            open = cv.wait(open).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The gate flag, poison-tolerantly: the flag is a plain bool, so a
    /// holder's panic cannot leave it inconsistent (same discipline as
    /// `RingCtx::lock`).
    fn flag(&self) -> MutexGuard<'_, bool> {
        self.0 .0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Counters and gauges the service maintains; cheap to clone out via
/// [`CdcService::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Batches accepted into the queue (excludes rejected/timed-out
    /// submissions; includes batches later shed).
    pub accepted_batches: u64,
    /// Rows those batches carried.
    pub accepted_rows: u64,
    /// Batches dropped by [`BackpressurePolicy::ShedOldest`] — never
    /// appended, applied, or acknowledged.
    pub shed_batches: u64,
    /// Commit groups synced (= changelog fsyncs issued by the service).
    pub committed_groups: u64,
    /// Snapshots written by the log-growth policy.
    pub snapshots: u64,
    /// Sealed segments deleted after snapshots.
    pub retired_segments: u64,
    /// High-water mark of the pending queue.
    pub max_queue_depth: usize,
    /// Changelog bytes on disk after the most recent group (all
    /// segments).
    pub changelog_bytes: u64,
    /// High-water mark of [`ServiceStats::changelog_bytes`] — the
    /// bounded-disk assertion reads this.
    pub max_changelog_bytes: u64,
}

/// One queued batch.
struct Pending {
    update: Update,
    rows: u64,
}

/// State shared between producers and the commit thread.
struct QueueState {
    queue: VecDeque<Pending>,
    /// Batches accepted into the queue, ever.
    accepted: u64,
    /// Batches fully resolved: durably committed **and** applied, or
    /// shed.  `flush` waits for `completed == accepted`.
    completed: u64,
    /// Highest sequence number covered by a successful fsync.
    durable_seq: u64,
    /// Highest sequence number applied to the engine.
    applied_seq: u64,
    shutdown: bool,
    /// Set (with the original error's text) when the pipeline failed;
    /// never cleared.
    poisoned: Option<String>,
    stats: ServiceStats,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Producers blocked on a full queue wait here.
    submit_cv: Condvar,
    /// The commit thread waits here for work or shutdown.
    work_cv: Condvar,
    /// `flush` callers wait here for the drain to catch up.
    ack_cv: Condvar,
}

impl Shared {
    /// The queue state, poison-tolerantly.  Pipeline failures travel
    /// through [`QueueState::poisoned`], which every wait loop checks —
    /// the mutex's own poison bit adds nothing, so a panicked holder's
    /// guard is recovered rather than cascading the panic into every
    /// accessor (the `RingCtx::lock` discipline).
    fn lock_state(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn poison(&self, msg: String) {
        let mut st = self.lock_state();
        if st.poisoned.is_none() {
            st.poisoned = Some(msg);
        }
        drop(st);
        self.submit_cv.notify_all();
        self.ack_cv.notify_all();
        self.work_cv.notify_all();
    }
}

fn poisoned_err(msg: &str) -> CdcError {
    CdcError::Poisoned(msg.to_string())
}

/// What [`CdcService::shutdown`] hands back after the drain.
pub struct ServiceShutdown<R: PersistRing> {
    /// The engine, reflecting every applied batch.
    pub engine: Engine<R>,
    /// Final counters and gauges.
    pub stats: ServiceStats,
    /// Highest sequence number covered by a successful fsync.
    pub durable_seq: u64,
    /// Highest sequence number applied to the engine.
    pub applied_seq: u64,
    /// The failure that poisoned the service, if any.  When set, batches
    /// past `durable_seq` were never acknowledged; recover from the
    /// durable artifacts.
    pub error: Option<CdcError>,
}

/// The bounded-queue, group-commit front end over an [`Engine`] and a
/// [`SegmentedLog`] (see the module docs for the pipeline and its ack
/// rules).
pub struct CdcService<R: PersistRing> {
    shared: Arc<Shared>,
    queue_capacity: usize,
    backpressure: BackpressurePolicy,
    handle: Option<JoinHandle<(Engine<R>, Option<CdcError>)>>,
}

impl<R: PersistRing> CdcService<R>
where
    Engine<R>: Send + 'static,
{
    /// Starts a service over fresh durable artifacts in `dir` (previous
    /// segments, snapshot, and stray snapshot temp files are removed).
    pub fn start(engine: Engine<R>, dir: impl AsRef<Path>, config: ServiceConfig) -> CdcResult<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        remove_if_exists(&snapshot_path)?;
        remove_if_exists(&snapshot_path.with_extension("tmp"))?;
        let mut log = SegmentedLog::create(dir, config.max_segment_bytes)?;
        if let Some(faults) = &config.sync_faults {
            log.set_sync_faults(faults.clone());
        }
        Ok(Self::spawn(engine, log, snapshot_path, config, 0))
    }

    /// Recovers engine state from the durable artifacts in `dir` (see
    /// [`crate::recover::recover`]) and starts the service on top,
    /// continuing the durable sequence.
    pub fn start_recovered(
        mut engine: Engine<R>,
        db: &Database,
        dir: impl AsRef<Path>,
        config: ServiceConfig,
    ) -> CdcResult<(Self, RecoveryReport)> {
        let dir = dir.as_ref();
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        // A stray temp file is a crashed snapshot save: the rename never
        // happened, so it is garbage — clean it up before anything else.
        remove_if_exists(&snapshot_path.with_extension("tmp"))?;
        let snapshot = snapshot_path.exists().then_some(snapshot_path.as_path());
        let report = crate::recover::recover(&mut engine, db, snapshot, dir)?;
        let mut log =
            SegmentedLog::open_append(dir, config.max_segment_bytes, report.last_seq + 1)?;
        if log.next_seq() <= report.last_seq {
            return Err(CdcError::Corrupt(format!(
                "changelog continues at seq {} but recovery reached seq {}: the log lost \
                 durable batches a snapshot still covers",
                log.next_seq(),
                report.last_seq
            )));
        }
        if let Some(faults) = &config.sync_faults {
            log.set_sync_faults(faults.clone());
        }
        let seq = report.last_seq;
        Ok((Self::spawn(engine, log, snapshot_path, config, seq), report))
    }

    fn spawn(
        engine: Engine<R>,
        log: SegmentedLog,
        snapshot_path: PathBuf,
        config: ServiceConfig,
        start_seq: u64,
    ) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::with_capacity(config.queue_capacity.min(4096)),
                accepted: 0,
                completed: 0,
                durable_seq: start_seq,
                applied_seq: start_seq,
                shutdown: false,
                poisoned: None,
                stats: ServiceStats {
                    changelog_bytes: log.total_bytes(),
                    max_changelog_bytes: log.total_bytes(),
                    ..ServiceStats::default()
                },
            }),
            submit_cv: Condvar::new(),
            work_cv: Condvar::new(),
            ack_cv: Condvar::new(),
        });
        let queue_capacity = config.queue_capacity.max(1);
        let backpressure = config.backpressure;
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("cdc-commit".into())
            .spawn(move || commit_loop(engine, log, snapshot_path, config, thread_shared))
            .expect("spawn cdc commit thread");
        CdcService {
            shared,
            queue_capacity,
            backpressure,
            handle: Some(handle),
        }
    }

    /// Enqueues one batch for durable commit.  `Ok` means *accepted*, not
    /// durable — durability is what [`CdcService::flush`] /
    /// [`CdcService::durable_seq`] report.  On a full queue the configured
    /// [`BackpressurePolicy`] applies; a [`CdcError::Backpressure`] or
    /// [`CdcError::Shutdown`] return means the batch was **not** enqueued.
    pub fn submit(&self, update: Update) -> CdcResult<()> {
        let rows = update.len() as u64;
        let pending = Pending { update, rows };
        let deadline_start = Instant::now();
        let mut st = self.shared.lock_state();
        loop {
            if let Some(msg) = &st.poisoned {
                return Err(poisoned_err(msg));
            }
            if st.shutdown {
                return Err(CdcError::Shutdown);
            }
            if st.queue.len() < self.queue_capacity {
                st.accepted += 1;
                st.stats.accepted_batches += 1;
                st.stats.accepted_rows += pending.rows;
                st.queue.push_back(pending);
                st.stats.max_queue_depth = st.stats.max_queue_depth.max(st.queue.len());
                drop(st);
                self.shared.work_cv.notify_one();
                return Ok(());
            }
            match self.backpressure {
                BackpressurePolicy::Reject => {
                    return Err(CdcError::Backpressure { queued: st.queue.len() });
                }
                BackpressurePolicy::ShedOldest => {
                    // The queue is at capacity (≥ 1), so a front exists;
                    // popping via `if let` keeps this path panic-free —
                    // an (impossible) empty queue just loops back to the
                    // now-satisfiable space check.
                    if st.queue.pop_front().is_some() {
                        st.stats.shed_batches += 1;
                        // The shed batch is resolved (it will never be
                        // durable or applied) — `flush` must not wait
                        // for it.
                        st.completed += 1;
                    }
                    drop(st);
                    self.shared.ack_cv.notify_all();
                    st = self.shared.lock_state();
                    // Loop: there is space now (only producers add).
                }
                BackpressurePolicy::Block { deadline } => {
                    let elapsed = deadline_start.elapsed();
                    if elapsed >= deadline {
                        return Err(CdcError::Backpressure { queued: st.queue.len() });
                    }
                    let (guard, _timeout) = self
                        .shared
                        .submit_cv
                        .wait_timeout(st, deadline - elapsed)
                        .unwrap_or_else(PoisonError::into_inner);
                    st = guard;
                }
            }
        }
    }

    /// Blocks until every batch accepted so far is durable **and**
    /// applied (shed batches excepted — they resolve as lost), then
    /// returns the highest durable sequence number.  Fails with
    /// [`CdcError::Poisoned`] if the pipeline failed before catching up.
    pub fn flush(&self) -> CdcResult<u64> {
        let mut st = self.shared.lock_state();
        let target = st.accepted;
        while st.completed < target {
            if let Some(msg) = &st.poisoned {
                return Err(poisoned_err(msg));
            }
            st = self.shared.ack_cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        Ok(st.durable_seq)
    }

    /// Highest sequence number covered by a successful fsync.
    pub fn durable_seq(&self) -> u64 {
        self.shared.lock_state().durable_seq
    }

    /// Highest sequence number applied to the engine.
    pub fn applied_seq(&self) -> u64 {
        self.shared.lock_state().applied_seq
    }

    /// Current pending-queue depth (excludes any in-flight commit group).
    pub fn queue_depth(&self) -> usize {
        self.shared.lock_state().queue.len()
    }

    /// Whether an earlier failure poisoned the pipeline.
    pub fn is_poisoned(&self) -> bool {
        self.shared.lock_state().poisoned.is_some()
    }

    /// A copy of the current counters and gauges.
    pub fn stats(&self) -> ServiceStats {
        self.shared.lock_state().stats.clone()
    }

    /// Stops accepting batches, drains everything already accepted
    /// (durably committed and applied, unless the pipeline poisons first),
    /// joins the commit thread, and hands the engine back.
    pub fn shutdown(mut self) -> ServiceShutdown<R> {
        self.signal_shutdown();
        // xlint:allow(no-panic): the commit thread owns the engine; if it
        // panicked there is no engine to hand back, and the ~10 existing
        // call sites consume `self` by value — a Result here cannot return
        // the service either. A panicked pipeline is unrecoverable by
        // design (recover from the durable artifacts instead).
        let handle = self.handle.take().expect("shutdown called once");
        let (engine, error) = handle.join().expect("cdc commit thread panicked");
        let st = self.shared.lock_state();
        ServiceShutdown {
            engine,
            stats: st.stats.clone(),
            durable_seq: st.durable_seq,
            applied_seq: st.applied_seq,
            error,
        }
    }

    fn signal_shutdown(&self) {
        let mut st = self.shared.lock_state();
        st.shutdown = true;
        drop(st);
        self.shared.work_cv.notify_all();
        self.shared.submit_cv.notify_all();
    }
}

impl<R: PersistRing> Drop for CdcService<R> {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.signal_shutdown();
            let _ = handle.join();
        }
    }
}

/// The commit thread: drains groups, makes them durable under one fsync,
/// applies them, and runs the snapshot/retirement policy.  Returns the
/// engine and the error that poisoned the pipeline (if any).
fn commit_loop<R: PersistRing>(
    mut engine: Engine<R>,
    mut log: SegmentedLog,
    snapshot_path: PathBuf,
    config: ServiceConfig,
    shared: Arc<Shared>,
) -> (Engine<R>, Option<CdcError>) {
    let group_max = config.group_commit_max.max(1);
    let mut bytes_since_snapshot = 0u64;
    let mut batches_since_snapshot = 0u64;
    loop {
        // Wait for work (or a shutdown with an empty queue = drain done).
        {
            let mut st = shared.lock_state();
            while st.queue.is_empty() && !st.shutdown {
                st = shared.work_cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            if st.queue.is_empty() {
                return (engine, None);
            }
        }
        // Fault hook: hold here (lock released) so tests can pile up a
        // full queue against a "stalled" pipeline.
        if let Some(gate) = &config.commit_gate {
            gate.wait_open();
        }
        // Drain one group; this frees queue space for producers.
        let group: Vec<Pending> = {
            let mut st = shared.lock_state();
            let n = st.queue.len().min(group_max);
            let group = st.queue.drain(..n).collect();
            drop(st);
            shared.submit_cv.notify_all();
            group
        };
        if group.is_empty() {
            continue;
        }

        // Append every batch, then one fsync for the whole group.  A
        // rotation inside the loop syncs the sealed segment first, so the
        // group-end sync still covers every byte of the group.
        let bytes_before = log.total_bytes();
        let mut last_seq = 0u64;
        let mut failed: Option<CdcError> = None;
        for p in &group {
            match log.append_unsynced(&p.update) {
                Ok(seq) => last_seq = seq,
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        if failed.is_none() {
            if let Err(e) = log.sync() {
                failed = Some(e);
            }
        }
        if let Some(e) = failed {
            shared.poison(e.to_string());
            return (engine, Some(e));
        }
        let group_bytes = log.total_bytes() - bytes_before;

        // Durable: the fsync covering `last_seq` succeeded — this is the
        // acknowledgement point.
        {
            let mut st = shared.lock_state();
            st.durable_seq = last_seq;
            st.stats.committed_groups += 1;
        }

        // Apply the group to the engine (write-ahead order: log first).
        for p in &group {
            if let Err(e) = engine.apply_update(&p.update) {
                let e = CdcError::from(e);
                shared.poison(e.to_string());
                return (engine, Some(e));
            }
        }
        {
            let mut st = shared.lock_state();
            st.applied_seq = last_seq;
            st.completed += group.len() as u64;
            st.stats.changelog_bytes = log.total_bytes();
            st.stats.max_changelog_bytes =
                st.stats.max_changelog_bytes.max(st.stats.changelog_bytes);
            drop(st);
            shared.ack_cv.notify_all();
        }

        // Snapshot by log growth, then retire what the snapshot covers.
        bytes_since_snapshot += group_bytes;
        batches_since_snapshot += group.len() as u64;
        let due = config
            .snapshot_every_bytes
            .is_some_and(|b| bytes_since_snapshot >= b)
            || config
                .snapshot_every_batches
                .is_some_and(|n| batches_since_snapshot >= n);
        if due {
            if let Err(e) = write_snapshot(&snapshot_path, last_seq, &engine) {
                shared.poison(e.to_string());
                return (engine, Some(e));
            }
            bytes_since_snapshot = 0;
            batches_since_snapshot = 0;
            let retired = if config.retire_segments {
                match log.retire(last_seq) {
                    Ok(n) => n as u64,
                    Err(e) => {
                        shared.poison(e.to_string());
                        return (engine, Some(e));
                    }
                }
            } else {
                0
            };
            let mut st = shared.lock_state();
            st.stats.snapshots += 1;
            st.stats.retired_segments += retired;
            st.stats.changelog_bytes = log.total_bytes();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_gate_blocks_until_opened() {
        let gate = CommitGate::closed_gate();
        let waiter = gate.clone();
        let opened = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = Arc::clone(&opened);
        let t = std::thread::spawn(move || {
            waiter.wait_open();
            flag.store(true, std::sync::atomic::Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(!opened.load(std::sync::atomic::Ordering::SeqCst));
        gate.open();
        t.join().unwrap();
        assert!(opened.load(std::sync::atomic::Ordering::SeqCst));
        // Reclosing makes the next wait block again; open_gate starts open.
        gate.close();
        CommitGate::open_gate().wait_open();
    }
}
