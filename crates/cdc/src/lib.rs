#![forbid(unsafe_code)]
//! Durability and fault tolerance for the F-IVM engine: CDC changelog
//! ingestion, engine snapshots, crash recovery by replay, and a bounded
//! ingest service with group commit.
//!
//! The maintenance engine ([`fivm_core::Engine`]) is an in-memory
//! structure; this crate makes its state survive restarts and crashes
//! with three artifacts, all hand-rolled binary formats (the build
//! environment is offline — even the CRC is in-tree, [`crc`]):
//!
//! * **Changelog** ([`changelog`], [`segment`]) — an append-only sequence
//!   of row-level change batches (insert / delete / update ops over
//!   decoded values), one checksummed record per batch, stored as
//!   size-bounded **segment** files (`changelog-<seq>.fvcl`) that rotate
//!   as they fill and are retired once a snapshot covers them.
//!   Write-ahead: a batch is synced to the log before it is applied to
//!   the engine.
//! * **Snapshot** ([`snapshot`]) — a point-in-time serialization of the
//!   engine (dictionary, every view's `(hash, key, payload)` entries)
//!   tagged with the changelog sequence number it includes; written
//!   atomically via temp-file + rename.
//! * **Recovery** ([`recover`]) — load the snapshot (or the base
//!   database when there is none), then replay the changelog tail across
//!   segment boundaries.  The result is **bit-identical** to an engine
//!   that applied the same durable prefix without interruption; the
//!   fault-injection suite in `tests/` proves it under torn tails,
//!   flipped bytes, and crashes at every batch/snapshot/rotation/
//!   retirement boundary.
//!
//! Why partial failures are detectable rather than silent: every record
//! is framed `[len][crc32][payload]` ([`framing`]).  A crash mid-append
//! leaves a torn tail (classified [`LogEnd::TornTail`], a clean
//! end-of-log); damaged bytes fail their checksum (classified
//! [`LogEnd::Corrupt`], ending the durable prefix).  Replay stops at the
//! damage point in both cases — the suffix was never durable, which is
//! exactly what an appending, syncing writer guarantees.  Damage in a
//! *sealed* segment (one the log rotated past) is bit rot, not a crash
//! artifact, and fails loudly instead ([`segment`]).
//!
//! Contracts carried across a restart (ROADMAP.md "durability contract"):
//!
//! * **Ring-key contract** — changelog rows are decoded values and
//!   re-encode through the recovering engine's dictionary; the snapshot
//!   serializes its dictionary (strings in id order) *with* the encoded
//!   view state, so encoded words never cross a dictionary boundary.
//! * **Hash-once contract** — snapshots store each entry's hash; restore
//!   pre-sizes every table and re-buckets from stored hashes, so
//!   `rehashes` and `ring_rehashes` read 0 after recovery.
//! * **Bit-exactness** — floats persist as raw bits
//!   ([`fivm_ring::PersistRing`]); replay uses the live ingestion path in
//!   the original batch order, so even non-associative float state
//!   matches bit-for-bit.
//! * **Ack ⇒ durable** — nothing is acknowledged before the fsync that
//!   covers it returns `Ok`, and a failed append or fsync **poisons** the
//!   pipeline ([`CdcError::Poisoned`]): after a failed sync, durability
//!   of the pending bytes is unknowable, so the only safe continuation is
//!   recovery from the on-disk prefix.
//!
//! Two front ends sit on these primitives:
//!
//! * [`DurableEngine`] — the synchronous façade: one fsync per batch,
//!   snapshots on demand.  Simple, and the per-batch-durability baseline
//!   the benches compare group commit against.
//! * [`CdcService`] ([`service`]) — the deployable shape: a bounded
//!   ingest queue with an explicit [`BackpressurePolicy`], **group
//!   commit** (many batches per fsync), snapshot scheduling by log
//!   growth, and segment retirement — disk stays bounded under an
//!   infinite churn stream.

pub mod changelog;
pub mod crc;
pub mod error;
pub mod fault;
pub mod framing;
pub mod recover;
pub mod segment;
pub mod service;
pub mod snapshot;

pub use changelog::{read_changelog, CdcBatch, CdcOp, ChangelogWriter, SyncFaults};
pub use error::{CdcError, CdcResult};
pub use framing::LogEnd;
pub use recover::{recover, RecoveryReport};
pub use segment::{list_segments, read_log_dir, segment_file_name, SegmentedLog};
pub use service::{
    BackpressurePolicy, CdcService, CommitGate, ServiceConfig, ServiceShutdown, ServiceStats,
};
pub use snapshot::{load_snapshot, read_snapshot, write_snapshot};

use fivm_core::{Engine, UpdateOutcome};
use fivm_relation::{Database, Update};
use fivm_ring::PersistRing;
use segment::DEFAULT_SEGMENT_BYTES;
use std::path::{Path, PathBuf};

/// File name of the snapshot inside a durable directory.
pub const SNAPSHOT_FILE: &str = "snapshot.fvsn";

/// An [`Engine`] with a write-ahead changelog and on-demand snapshots.
///
/// Update flow: [`DurableEngine::apply_update`] appends the batch to the
/// changelog (synced — once the append returns, the batch is durable) and
/// *then* applies it to the engine.  A crash between the two is safe:
/// recovery replays the logged batch, converging on the same state.
///
/// The changelog is segmented ([`SegmentedLog`]): appends rotate to a new
/// `changelog-<seq>.fvcl` file at the size bound, and recovery replays
/// across the boundaries.  Snapshots ([`DurableEngine::snapshot`]) bound
/// replay time; segments are **not** retired here (recovery skips batches
/// the snapshot already includes, and an older snapshot plus the same log
/// still recovers) — [`CdcService`] is the front end that retires.
pub struct DurableEngine<R: PersistRing> {
    engine: Engine<R>,
    log: SegmentedLog,
    snapshot_path: PathBuf,
    /// Sequence number of the last batch applied to the in-memory engine.
    pub(crate) applied_seq: u64,
}

impl<R: PersistRing> DurableEngine<R> {
    /// Wraps a freshly built engine, creating a new (empty) changelog in
    /// `dir`.  Any previous changelog segments there are deleted; an
    /// existing snapshot (and any stray snapshot temp file) is removed —
    /// they describe state this engine never had.
    pub fn create(engine: Engine<R>, dir: impl AsRef<Path>) -> CdcResult<Self> {
        Self::create_with(engine, dir, DEFAULT_SEGMENT_BYTES)
    }

    /// [`DurableEngine::create`] with an explicit segment-rotation
    /// threshold in bytes.
    pub fn create_with(
        engine: Engine<R>,
        dir: impl AsRef<Path>,
        max_segment_bytes: u64,
    ) -> CdcResult<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        remove_if_exists(&snapshot_path)?;
        remove_if_exists(&snapshot_path.with_extension("tmp"))?;
        let log = SegmentedLog::create(dir, max_segment_bytes)?;
        Ok(DurableEngine {
            engine,
            log,
            snapshot_path,
            applied_seq: 0,
        })
    }

    /// Recovers from the durable artifacts in `dir` into a freshly built
    /// engine (same plan, ring and lifts as the crashed one), then reopens
    /// the changelog for appending.  A stray `snapshot.fvsn.tmp` from a
    /// crashed save is deleted first — the rename never happened, so it is
    /// garbage.  See [`recover::recover`] for the snapshot-vs-full-replay
    /// split and the bit-identity argument.
    pub fn recover(
        engine: Engine<R>,
        db: &Database,
        dir: impl AsRef<Path>,
    ) -> CdcResult<(Self, RecoveryReport)> {
        Self::recover_with(engine, db, dir, DEFAULT_SEGMENT_BYTES)
    }

    /// [`DurableEngine::recover`] with an explicit segment-rotation
    /// threshold for the reopened log.
    pub fn recover_with(
        mut engine: Engine<R>,
        db: &Database,
        dir: impl AsRef<Path>,
        max_segment_bytes: u64,
    ) -> CdcResult<(Self, RecoveryReport)> {
        let dir = dir.as_ref();
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        remove_if_exists(&snapshot_path.with_extension("tmp"))?;
        let snapshot = snapshot_path.exists().then_some(snapshot_path.as_path());
        let report = recover::recover(&mut engine, db, snapshot, dir)?;
        // Reopening truncates any torn/corrupt tail in the active segment
        // to the valid prefix, so the next append continues the durable
        // sequence.
        let log = SegmentedLog::open_append(dir, max_segment_bytes, report.last_seq + 1)?;
        if log.next_seq() <= report.last_seq {
            return Err(CdcError::Corrupt(format!(
                "changelog continues at seq {} but recovery reached seq {}: the log lost \
                 durable batches a snapshot still covers",
                log.next_seq(),
                report.last_seq
            )));
        }
        Ok((
            DurableEngine {
                engine,
                log,
                snapshot_path,
                applied_seq: report.last_seq,
            },
            report,
        ))
    }

    /// Loads the base database.  Not logged: the base load is part of the
    /// engine-construction recipe, and recovery re-loads it (or restores
    /// a snapshot that already includes it) before replaying the log.
    pub fn load_database(&mut self, db: &Database) -> CdcResult<()> {
        self.engine.load_database(db)?;
        Ok(())
    }

    /// Write-ahead apply: the batch is durable in the changelog before
    /// the engine sees it.
    pub fn apply_update(&mut self, update: &Update) -> CdcResult<UpdateOutcome> {
        let seq = self.log.append_update(update)?;
        let outcome = self.engine.apply_update(update)?;
        self.applied_seq = seq;
        Ok(outcome)
    }

    /// Writes an atomic snapshot of the current state, tagged with the
    /// last applied sequence number (returned).
    pub fn snapshot(&mut self) -> CdcResult<u64> {
        write_snapshot(&self.snapshot_path, self.applied_seq, &self.engine)?;
        Ok(self.applied_seq)
    }

    /// Deletes sealed changelog segments entirely covered by a snapshot
    /// at `snapshot_seq` (see [`SegmentedLog::retire`]); returns how many
    /// were deleted.
    pub fn retire_segments(&mut self, snapshot_seq: u64) -> CdcResult<usize> {
        self.log.retire(snapshot_seq)
    }

    /// Sequence number of the last batch applied to the engine.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Total changelog bytes on disk across every segment.
    pub fn changelog_bytes(&self) -> u64 {
        self.log.total_bytes()
    }

    /// The wrapped engine (results, stats, views).
    pub fn engine(&self) -> &Engine<R> {
        &self.engine
    }

    /// Mutable access to the wrapped engine.  Changes made directly are
    /// **not** logged; use [`DurableEngine::apply_update`] for durable
    /// mutations.
    pub fn engine_mut(&mut self) -> &mut Engine<R> {
        &mut self.engine
    }

    /// Consumes the wrapper, returning the engine.
    pub fn into_engine(self) -> Engine<R> {
        self.engine
    }
}

pub(crate) fn remove_if_exists(path: &Path) -> CdcResult<()> {
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}
