//! Checksummed record framing shared by the changelog and snapshot files.
//!
//! A durable file is a fixed header followed by zero or more records:
//!
//! ```text
//! [magic: 4 bytes][version: u32 LE]            -- header
//! [len: u32 LE][crc32(payload): u32 LE][payload: len bytes]   -- per record
//! ```
//!
//! The framing is what makes partial failures *detectable* instead of
//! silent:
//!
//! * a **torn tail** (crash mid-append, short write) leaves the final
//!   record with fewer than `len` payload bytes — or a cut-off length
//!   field itself — and scanning reports [`LogEnd::TornTail`] at the
//!   offset where the valid prefix ends;
//! * a **corrupt record** (bit rot, seek bug, flipped checksum byte)
//!   fails its CRC and scanning reports [`LogEnd::Corrupt`].
//!
//! Both cases end the valid prefix; everything before it is intact by
//! checksum.  Recovery treats the records after the prefix as
//! never-durable — exactly the contract an appending writer provides,
//! since records become durable in order.

use crate::crc::crc32;
use crate::error::{CdcError, CdcResult};

/// Bytes every record costs on top of its payload.
pub const RECORD_OVERHEAD: usize = 8;

/// Header length: magic + version.
pub const HEADER_LEN: usize = 8;

/// Caps a single record's payload (64 MiB).  A length field beyond the cap
/// is treated as corruption rather than an allocation request.
pub const MAX_RECORD_LEN: usize = 64 << 20;

/// How a scan over a file's records ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogEnd {
    /// The file ends exactly on a record boundary.
    Clean,
    /// The file ends inside a record (crash mid-append / short write).
    /// `valid_len` is the byte offset where the intact prefix ends.
    TornTail { valid_len: usize },
    /// A record failed its checksum (or declared an impossible length).
    /// `valid_len` is the byte offset where the intact prefix ends.
    Corrupt { valid_len: usize },
}

impl LogEnd {
    /// Whether every byte of the file was part of a valid record.
    pub fn is_clean(&self) -> bool {
        matches!(self, LogEnd::Clean)
    }
}

/// Little-endian `u32` at `pos`; the caller has already length-checked
/// the slice, so indexing (never a panicking `try_into().expect`) reads
/// the four bytes directly.
#[inline]
fn read_u32_le(bytes: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
}

/// Appends the file header for `magic`/`version` to `out`.
pub fn put_header(out: &mut Vec<u8>, magic: &[u8; 4], version: u32) {
    out.extend_from_slice(magic);
    out.extend_from_slice(&version.to_le_bytes());
}

/// Validates a file's header, returning the offset of the first record.
pub fn check_header(bytes: &[u8], magic: &[u8; 4], version: u32) -> CdcResult<usize> {
    if bytes.len() < HEADER_LEN {
        return Err(CdcError::Corrupt(format!(
            "file is {} bytes, shorter than its {HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if &bytes[..4] != magic {
        return Err(CdcError::Corrupt(format!(
            "bad magic {:02x?} (expected {:02x?})",
            &bytes[..4],
            magic
        )));
    }
    let got = read_u32_le(bytes, 4);
    if got != version {
        return Err(CdcError::Corrupt(format!(
            "unsupported format version {got} (expected {version})"
        )));
    }
    Ok(HEADER_LEN)
}

/// Appends one framed record (`len`, `crc`, payload) to `out`.
pub fn put_record(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(payload.len() <= MAX_RECORD_LEN, "record payload over MAX_RECORD_LEN");
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Scans the framed records starting at `offset`, returning every payload
/// of the valid prefix and how the scan ended.  Never fails: damage is
/// reported through [`LogEnd`], because a torn or corrupt *tail* is an
/// expected crash outcome, not an unreadable file.
pub fn scan_records(bytes: &[u8], offset: usize) -> (Vec<&[u8]>, LogEnd) {
    let mut records = Vec::new();
    let mut pos = offset;
    loop {
        if pos == bytes.len() {
            return (records, LogEnd::Clean);
        }
        if bytes.len() - pos < RECORD_OVERHEAD {
            return (records, LogEnd::TornTail { valid_len: pos });
        }
        let len = read_u32_le(bytes, pos) as usize;
        let crc = read_u32_le(bytes, pos + 4);
        if len > MAX_RECORD_LEN {
            return (records, LogEnd::Corrupt { valid_len: pos });
        }
        let body_start = pos + RECORD_OVERHEAD;
        if bytes.len() - body_start < len {
            return (records, LogEnd::TornTail { valid_len: pos });
        }
        let payload = &bytes[body_start..body_start + len];
        if crc32(payload) != crc {
            return (records, LogEnd::Corrupt { valid_len: pos });
        }
        records.push(payload);
        pos = body_start + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 4] = b"TST1";

    fn file_with(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        put_header(&mut out, MAGIC, 1);
        for p in payloads {
            put_record(&mut out, p);
        }
        out
    }

    #[test]
    fn round_trips_records() {
        let f = file_with(&[b"alpha", b"", b"gamma rays"]);
        let start = check_header(&f, MAGIC, 1).unwrap();
        let (records, end) = scan_records(&f, start);
        assert_eq!(records, vec![b"alpha".as_slice(), b"", b"gamma rays"]);
        assert!(end.is_clean());
    }

    #[test]
    fn header_is_validated() {
        let f = file_with(&[]);
        assert!(check_header(&f, b"XXXX", 1).is_err());
        assert!(check_header(&f, MAGIC, 2).is_err());
        assert!(check_header(&f[..5], MAGIC, 1).is_err());
        assert_eq!(check_header(&f, MAGIC, 1).unwrap(), HEADER_LEN);
    }

    #[test]
    fn torn_tails_end_the_valid_prefix() {
        let full = file_with(&[b"first", b"second"]);
        // Cut anywhere inside the second record: first survives.
        let second_start = HEADER_LEN + RECORD_OVERHEAD + 5;
        for cut in second_start + 1..full.len() {
            let (records, end) = scan_records(&full[..cut], HEADER_LEN);
            assert_eq!(records.len(), 1, "cut at {cut}");
            assert_eq!(end, LogEnd::TornTail { valid_len: second_start });
        }
    }

    #[test]
    fn corruption_is_detected_and_stops_the_scan() {
        let mut f = file_with(&[b"first", b"second", b"third"]);
        // Flip one payload byte of the second record.
        let idx = HEADER_LEN + RECORD_OVERHEAD + 5 + RECORD_OVERHEAD + 2;
        f[idx] ^= 0x10;
        let (records, end) = scan_records(&f, HEADER_LEN);
        assert_eq!(records, vec![b"first".as_slice()]);
        assert!(matches!(end, LogEnd::Corrupt { .. }));

        // Flip a checksum byte instead: same verdict.
        let mut f = file_with(&[b"first", b"second"]);
        let crc_idx = HEADER_LEN + RECORD_OVERHEAD + 5 + 4;
        f[crc_idx] ^= 0x01;
        let (records, end) = scan_records(&f, HEADER_LEN);
        assert_eq!(records.len(), 1);
        assert!(matches!(end, LogEnd::Corrupt { .. }));
    }

    #[test]
    fn absurd_length_field_is_corruption_not_allocation() {
        let mut f = file_with(&[]);
        f.extend_from_slice(&u32::MAX.to_le_bytes());
        f.extend_from_slice(&[0u8; 4]);
        let (records, end) = scan_records(&f, HEADER_LEN);
        assert!(records.is_empty());
        assert!(matches!(end, LogEnd::Corrupt { .. }));
    }
}
