//! Typed durability errors: [`CdcError`] and the [`CdcResult`] alias.

use fivm_common::WireError;
use fivm_core::EngineError;
use std::fmt;

/// Result alias using [`CdcError`].
pub type CdcResult<T> = std::result::Result<T, CdcError>;

/// Errors raised by the durability layer.
#[derive(Debug)]
pub enum CdcError {
    /// An operating-system I/O failure (open, read, write, rename).
    Io(std::io::Error),
    /// A file failed structural validation *before* its checksummed
    /// records: wrong magic, unsupported format version, or a header too
    /// short to be a log/snapshot at all.  Distinct from a torn tail,
    /// which is a clean end-of-log, not an error.
    Corrupt(String),
    /// The engine rejected restored or replayed state.
    Engine(EngineError),
    /// A bounded ingest queue refused a batch: the queue was full and the
    /// backpressure policy was [`Reject`](crate::BackpressurePolicy::Reject),
    /// or a [`Block`](crate::BackpressurePolicy::Block) deadline expired
    /// while the queue stayed full.  `queued` is the queue depth at
    /// refusal.  Retryable by design — the batch was *not* enqueued and
    /// nothing was lost.
    Backpressure { queued: usize },
    /// The durability pipeline hit an unrecoverable failure earlier (a
    /// failed append or `fsync`, or an engine error mid-apply) and now
    /// refuses all further work: an acknowledged batch must be on disk,
    /// and after a failed sync the writer cannot claim that again.  The
    /// string is the original failure.  Recover from the durable artifacts
    /// to resume — the acked prefix is intact.
    Poisoned(String),
    /// The service was asked to shut down; no further batches are
    /// accepted (queued batches still drain durably).
    Shutdown,
}

impl CdcError {
    /// Short machine-readable category name.
    pub fn kind(&self) -> &'static str {
        match self {
            CdcError::Io(_) => "io",
            CdcError::Corrupt(_) => "corrupt",
            CdcError::Engine(e) => e.kind(),
            CdcError::Backpressure { .. } => "backpressure",
            CdcError::Poisoned(_) => "poisoned",
            CdcError::Shutdown => "shutdown",
        }
    }
}

impl fmt::Display for CdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdcError::Io(e) => write!(f, "durability I/O error: {e}"),
            CdcError::Corrupt(msg) => write!(f, "corrupt durable file: {msg}"),
            CdcError::Engine(e) => e.fmt(f),
            CdcError::Backpressure { queued } => {
                write!(f, "ingest queue full ({queued} batches queued): backpressure")
            }
            CdcError::Poisoned(msg) => {
                write!(f, "durability pipeline poisoned by earlier failure: {msg}")
            }
            CdcError::Shutdown => write!(f, "CDC service is shutting down"),
        }
    }
}

impl std::error::Error for CdcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CdcError::Io(e) => Some(e),
            CdcError::Engine(e) => Some(e),
            CdcError::Corrupt(_)
            | CdcError::Backpressure { .. }
            | CdcError::Poisoned(_)
            | CdcError::Shutdown => None,
        }
    }
}

impl From<std::io::Error> for CdcError {
    fn from(e: std::io::Error) -> Self {
        CdcError::Io(e)
    }
}

impl From<EngineError> for CdcError {
    fn from(e: EngineError) -> Self {
        CdcError::Engine(e)
    }
}

impl From<WireError> for CdcError {
    fn from(e: WireError) -> Self {
        CdcError::Corrupt(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_sources() {
        use std::error::Error;
        let io = CdcError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert_eq!(io.kind(), "io");
        assert!(io.source().is_some());
        let c = CdcError::from(WireError::Truncated);
        assert_eq!(c.kind(), "corrupt");
        let e = CdcError::from(EngineError::State("plan mismatch".into()));
        assert_eq!(e.kind(), "state");
        assert!(e.to_string().contains("plan mismatch"));
    }
}
