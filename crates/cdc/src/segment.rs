//! Changelog segment rotation and retirement: the single `changelog.fvcl`
//! becomes a sequence of size-bounded segment files, so the log can grow
//! forever in *sequence* while staying bounded on *disk*.
//!
//! Naming invariant: a segment file is named
//! `changelog-<first_seq:016>.fvcl`, where `<first_seq>` is the sequence
//! number its first batch carries (or will carry, for a freshly rotated
//! segment that is still empty).  Sorting file names therefore sorts
//! segments by sequence, and a segment's *coverage* is `[first_seq,
//! next_segment.first_seq)` — readable from the directory listing alone,
//! without opening any file.
//!
//! Durability asymmetry between segments:
//!
//! * The **active** (newest) segment is the only one an appender writes,
//!   so torn or corrupt tails there are crash artifacts — *data* marking
//!   where durability ended, exactly like the single-file changelog.  A
//!   segment whose header never finished (crash mid-rotation) is the
//!   degenerate case: torn at offset 0, zero batches durable.
//! * **Sealed** segments (every earlier one) were fully synced before the
//!   log rotated past them, so damage there is bit rot, not a crash
//!   artifact.  Scanning fails loudly ([`CdcError::Corrupt`]) instead of
//!   silently skipping a gap: batches after a mid-chain hole must never
//!   replay, and dropping them silently would un-ack durable data.
//!
//! Retirement invariant: a sealed segment may be deleted once every
//! sequence number it covers is `<=` the newest snapshot's — recovery will
//! never need to replay it again.  Deletion goes oldest-first, so a crash
//! mid-retirement leaves a contiguous suffix of segments (a prefix of the
//! deletions), never a hole.  The active segment is never retired.

use crate::changelog::{read_changelog, CdcBatch, ChangelogWriter, SyncFaults};
use crate::error::{CdcError, CdcResult};
use crate::framing::{self, LogEnd};
use fivm_relation::Update;
use std::path::{Path, PathBuf};

/// Prefix of every changelog segment file name.
pub const SEGMENT_PREFIX: &str = "changelog-";

/// Suffix of every changelog segment file name.
pub const SEGMENT_SUFFIX: &str = ".fvcl";

/// Default rotation threshold for [`SegmentedLog::create`] callers that do
/// not choose one (64 MiB — large enough that small deployments behave
/// like the old single-file log).
pub const DEFAULT_SEGMENT_BYTES: u64 = 64 << 20;

/// File name of the segment whose first batch carries `first_seq`.
pub fn segment_file_name(first_seq: u64) -> String {
    format!("{SEGMENT_PREFIX}{first_seq:016}{SEGMENT_SUFFIX}")
}

/// Parses a segment file name back to its `first_seq`; `None` for any
/// file that is not a changelog segment (snapshots share the directory).
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix(SEGMENT_PREFIX)?.strip_suffix(SEGMENT_SUFFIX)?;
    if digits.len() != 16 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// One segment as seen in a directory listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Sequence number of the segment's first batch (from the file name).
    pub first_seq: u64,
    /// Full path of the segment file.
    pub path: PathBuf,
    /// Current file size in bytes.
    pub bytes: u64,
}

/// Lists the changelog segments in `dir`, sorted by `first_seq`.  Files
/// that do not match the segment naming pattern are ignored.
pub fn list_segments(dir: impl AsRef<Path>) -> CdcResult<Vec<SegmentInfo>> {
    let dir = dir.as_ref();
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(first_seq) = parse_segment_name(name) else { continue };
        out.push(SegmentInfo {
            first_seq,
            path: entry.path(),
            bytes: entry.metadata()?.len(),
        });
    }
    out.sort_by_key(|s| s.first_seq);
    for pair in out.windows(2) {
        if pair[0].first_seq == pair[1].first_seq {
            return Err(CdcError::Corrupt(format!(
                "two changelog segments claim first_seq {}",
                pair[0].first_seq
            )));
        }
    }
    Ok(out)
}

/// Result of scanning a whole segment directory.
#[derive(Debug)]
pub struct LogScan {
    /// Every batch of the durable prefix, in sequence order, across all
    /// segments.
    pub batches: Vec<CdcBatch>,
    /// How the prefix ended: damage in the *active* (newest) segment shows
    /// up here, exactly like the single-file scan; sealed-segment damage
    /// is an error instead.
    pub end: LogEnd,
    /// Number of segment files scanned.
    pub segments: usize,
    /// `first_seq` of the oldest segment on disk (`None` when the
    /// directory holds no segments) — recovery uses it to detect a gap
    /// between a snapshot and the retained log.
    pub oldest_seq: Option<u64>,
}

/// Reads every changelog segment in `dir` in sequence order, enforcing
/// the naming and continuity invariants:
///
/// * a segment's first batch carries exactly the file name's `first_seq`;
/// * sequence numbers are contiguous across segment boundaries;
/// * sealed segments end clean (damage there is [`CdcError::Corrupt`]);
/// * the active segment may end torn/corrupt ([`LogScan::end`] reports
///   it), including the rotation-crash artifact of a segment too short to
///   hold its header (treated as torn at offset 0, zero batches).
pub fn read_log_dir(dir: impl AsRef<Path>) -> CdcResult<LogScan> {
    let segments = list_segments(dir)?;
    let mut batches: Vec<CdcBatch> = Vec::new();
    let mut end = LogEnd::Clean;
    let last = segments.len().wrapping_sub(1);
    for (i, seg) in segments.iter().enumerate() {
        let is_active = i == last;
        if is_active && seg.bytes < framing::HEADER_LEN as u64 {
            // Crash mid-rotation: the header never finished, nothing in
            // this segment was ever durable.
            end = LogEnd::TornTail { valid_len: 0 };
            break;
        }
        let (seg_batches, seg_end) = read_changelog(&seg.path)?;
        if !seg_end.is_clean() && !is_active {
            return Err(CdcError::Corrupt(format!(
                "sealed changelog segment {} is damaged ({seg_end:?}): sealed segments \
                 were fully synced at rotation, so this is bit rot, not a crash artifact",
                seg.path.display()
            )));
        }
        match seg_batches.first() {
            Some(first) => {
                if first.seq != seg.first_seq {
                    return Err(CdcError::Corrupt(format!(
                        "segment {} is named for seq {} but starts at seq {}",
                        seg.path.display(),
                        seg.first_seq,
                        first.seq
                    )));
                }
                if let Some(prev) = batches.last() {
                    if first.seq != prev.seq + 1 {
                        return Err(CdcError::Corrupt(format!(
                            "changelog sequence gap across segments: {} then {}",
                            prev.seq, first.seq
                        )));
                    }
                }
            }
            None => {
                if !is_active {
                    return Err(CdcError::Corrupt(format!(
                        "sealed changelog segment {} holds no batches (only the \
                         newest segment may be empty)",
                        seg.path.display()
                    )));
                }
            }
        }
        batches.extend(seg_batches);
        end = seg_end;
    }
    Ok(LogScan {
        batches,
        end,
        segments: segments.len(),
        oldest_seq: segments.first().map(|s| s.first_seq),
    })
}

/// A size-bounded sequence of changelog segments behind the
/// [`ChangelogWriter`] interface: appends go to the newest (*active*)
/// segment, rotation seals it and opens the next, and retirement deletes
/// sealed segments a snapshot has made obsolete.
pub struct SegmentedLog {
    dir: PathBuf,
    active: ChangelogWriter,
    active_first_seq: u64,
    /// Sealed segments still on disk, oldest first.
    sealed: Vec<SegmentInfo>,
    max_segment_bytes: u64,
    sync_faults: Option<SyncFaults>,
    /// Set when a rotation failed partway; the log can no longer promise
    /// where appended bytes live, so it refuses further work.
    poisoned: bool,
}

impl SegmentedLog {
    /// Starts a fresh segmented changelog in `dir`, deleting any previous
    /// segments there.  The first segment is named for sequence 1.
    pub fn create(dir: impl AsRef<Path>, max_segment_bytes: u64) -> CdcResult<SegmentedLog> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        for seg in list_segments(&dir)? {
            std::fs::remove_file(&seg.path)?;
        }
        let active = ChangelogWriter::create_at(dir.join(segment_file_name(1)), 1)?;
        Ok(SegmentedLog {
            dir,
            active,
            active_first_seq: 1,
            sealed: Vec::new(),
            max_segment_bytes,
            sync_faults: None,
            poisoned: false,
        })
    }

    /// Reopens an existing segmented changelog for appending.  The active
    /// segment's torn/corrupt tail (if any) is truncated back to the valid
    /// prefix — or the whole segment recreated, when a rotation crash left
    /// it without a complete header — so appends continue the durable
    /// sequence.  With no segments on disk (a fresh directory, or one
    /// holding only a snapshot), a new segment is created named for
    /// `fallback_first_seq` — the sequence number after the recovered
    /// snapshot's.
    pub fn open_append(
        dir: impl AsRef<Path>,
        max_segment_bytes: u64,
        fallback_first_seq: u64,
    ) -> CdcResult<SegmentedLog> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut segments = list_segments(&dir)?;
        let (active, active_first_seq) = match segments.pop() {
            None => {
                let first = fallback_first_seq.max(1);
                (
                    ChangelogWriter::create_at(dir.join(segment_file_name(first)), first)?,
                    first,
                )
            }
            Some(tail) => {
                // Sealed segments must be intact before we agree to extend
                // the chain (same loud-failure rule as `read_log_dir`).
                for seg in &segments {
                    let (_, end) = read_changelog(&seg.path)?;
                    if !end.is_clean() {
                        return Err(CdcError::Corrupt(format!(
                            "sealed changelog segment {} is damaged ({end:?})",
                            seg.path.display()
                        )));
                    }
                }
                let writer = if tail.bytes < framing::HEADER_LEN as u64 {
                    // Rotation crashed before the header finished: nothing
                    // in the file was durable; start it over.
                    ChangelogWriter::create_at(&tail.path, tail.first_seq)?
                } else {
                    ChangelogWriter::open_append_at(&tail.path, tail.first_seq)?
                };
                (writer, tail.first_seq)
            }
        };
        Ok(SegmentedLog {
            dir,
            active,
            active_first_seq,
            sealed: segments,
            max_segment_bytes,
            sync_faults: None,
            poisoned: false,
        })
    }

    /// The sequence number the next appended batch will carry.
    pub fn next_seq(&self) -> u64 {
        self.active.next_seq()
    }

    /// Number of segment files on disk (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Total bytes across every segment on disk — the gauge the
    /// bounded-disk guarantee is asserted on.
    pub fn total_bytes(&self) -> u64 {
        self.sealed.iter().map(|s| s.bytes).sum::<u64>() + self.active.file_len()
    }

    /// Whether an earlier failure poisoned the log (see
    /// [`ChangelogWriter::is_poisoned`]).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned || self.active.is_poisoned()
    }

    /// Arms the fsync fault injector on the active segment and every
    /// segment rotated to later.
    pub fn set_sync_faults(&mut self, faults: SyncFaults) {
        self.active.set_sync_faults(faults.clone());
        self.sync_faults = Some(faults);
    }

    /// Appends one update *without* syncing (group commit; see
    /// [`ChangelogWriter::append_unsynced`]) and returns its sequence
    /// number.  Rotates to a new segment first when the active one has
    /// reached the size bound — the sealed segment is synced as part of
    /// rotation, so nothing already appended loses durability ordering.
    pub fn append_unsynced(&mut self, update: &Update) -> CdcResult<u64> {
        if self.poisoned {
            return Err(CdcError::Poisoned(
                "segmented changelog refused: an earlier rotation failed".into(),
            ));
        }
        self.maybe_rotate()?;
        let seq = self.active.next_seq();
        let batch = CdcBatch::from_update(seq, update);
        self.active.append_unsynced(&batch)?;
        Ok(seq)
    }

    /// Syncs the active segment: everything appended so far is durable
    /// once this returns `Ok` (earlier segments were synced when sealed).
    pub fn sync(&mut self) -> CdcResult<()> {
        self.active.sync()
    }

    /// Appends one update durably (append + sync) and returns its
    /// sequence number — the per-batch-fsync discipline.
    pub fn append_update(&mut self, update: &Update) -> CdcResult<u64> {
        let seq = self.append_unsynced(update)?;
        self.sync()?;
        Ok(seq)
    }

    /// Seals the active segment and opens the next when the size bound is
    /// reached.  An empty segment never rotates (rotation would name the
    /// successor identically).
    fn maybe_rotate(&mut self) -> CdcResult<()> {
        if self.active.file_len() < self.max_segment_bytes
            || self.active.next_seq() == self.active_first_seq
        {
            return Ok(());
        }
        // Seal: the old segment's bytes must be durable before any append
        // goes to the successor, or a crash could lose a middle segment's
        // tail while a later segment holds data.
        self.active.sync()?;
        let next_seq = self.active.next_seq();
        let sealed_path = self.dir.join(segment_file_name(self.active_first_seq));
        let new_path = self.dir.join(segment_file_name(next_seq));
        let mut writer = match ChangelogWriter::create_at(&new_path, next_seq) {
            Ok(w) => w,
            Err(e) => {
                // The old segment is intact, but this log's view of the
                // chain is not trustworthy anymore; refuse further appends
                // and let recovery re-establish it.
                self.poisoned = true;
                return Err(e);
            }
        };
        if let Some(faults) = &self.sync_faults {
            writer.set_sync_faults(faults.clone());
        }
        let sealed_bytes = std::mem::replace(&mut self.active, writer).file_len();
        self.sealed.push(SegmentInfo {
            first_seq: self.active_first_seq,
            path: sealed_path,
            bytes: sealed_bytes,
        });
        self.active_first_seq = next_seq;
        Ok(())
    }

    /// Retires (deletes) sealed segments whose every sequence number is
    /// `<= snapshot_seq` — recovery restores the snapshot and never
    /// replays them again.  Coverage is read off the successor's name: a
    /// sealed segment covers `[first_seq, successor.first_seq)`.  Deletion
    /// goes oldest-first so a crash mid-retirement leaves a contiguous
    /// chain.  Returns how many segments were deleted.
    pub fn retire(&mut self, snapshot_seq: u64) -> CdcResult<usize> {
        let mut retired = 0;
        while let Some(seg) = self.sealed.first() {
            let successor_first = self
                .sealed
                .get(1)
                .map_or(self.active_first_seq, |s| s.first_seq);
            // Highest seq this segment can hold is successor_first - 1.
            if successor_first > snapshot_seq + 1 {
                break;
            }
            std::fs::remove_file(&seg.path)?;
            self.sealed.remove(0);
            retired += 1;
        }
        Ok(retired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fivm_common::Value;
    use fivm_relation::tuple;

    fn row(v: i64) -> fivm_relation::Tuple {
        tuple([Value::int(v)])
    }

    fn update(v: i64) -> Update {
        Update::inserts("T", vec![row(v)])
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fivm_cdc_segment_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn names_round_trip_and_reject_non_segments() {
        assert_eq!(segment_file_name(1), "changelog-0000000000000001.fvcl");
        assert_eq!(parse_segment_name(&segment_file_name(42)), Some(42));
        assert_eq!(
            parse_segment_name(&segment_file_name(9_999_999_999_999_999)),
            Some(9_999_999_999_999_999)
        );
        assert_eq!(parse_segment_name("changelog.fvcl"), None);
        assert_eq!(parse_segment_name("snapshot.fvsn"), None);
        assert_eq!(parse_segment_name("changelog-abc.fvcl"), None);
        assert_eq!(parse_segment_name("changelog-1.fvcl"), None, "unpadded");
    }

    #[test]
    fn rotation_seals_by_size_and_readers_cross_boundaries() {
        let dir = tempdir("rotate");
        // Tiny bound: every batch lands in its own segment after the first.
        let mut log = SegmentedLog::create(&dir, 1).unwrap();
        for v in 1..=5 {
            assert_eq!(log.append_update(&update(v)).unwrap(), v as u64);
        }
        assert_eq!(log.segment_count(), 5);
        let scan = read_log_dir(&dir).unwrap();
        assert!(scan.end.is_clean());
        assert_eq!(scan.segments, 5);
        assert_eq!(
            scan.batches.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        assert_eq!(scan.oldest_seq, Some(1));

        // Reopen continues the sequence in the tail segment.
        drop(log);
        let mut log = SegmentedLog::open_append(&dir, 1, 1).unwrap();
        assert_eq!(log.next_seq(), 6);
        log.append_update(&update(6)).unwrap();
        let scan = read_log_dir(&dir).unwrap();
        assert_eq!(scan.batches.len(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retirement_deletes_snapshot_covered_segments_oldest_first() {
        let dir = tempdir("retire");
        let mut log = SegmentedLog::create(&dir, 1).unwrap();
        for v in 1..=6 {
            log.append_update(&update(v)).unwrap();
        }
        assert_eq!(log.segment_count(), 6);
        let total_before = log.total_bytes();

        // Snapshot at seq 3: segments covering 1..=3 go; segment starting
        // at 4 must stay (it covers seq 4 > 3).
        assert_eq!(log.retire(3).unwrap(), 3);
        assert_eq!(log.segment_count(), 3);
        assert!(log.total_bytes() < total_before);
        let scan = read_log_dir(&dir).unwrap();
        assert_eq!(scan.oldest_seq, Some(4));
        assert_eq!(
            scan.batches.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![4, 5, 6]
        );

        // Retiring at the newest seq never touches the active segment.
        assert_eq!(log.retire(100).unwrap(), 2);
        assert_eq!(log.segment_count(), 1);
        assert_eq!(log.next_seq(), 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_tail_segment_is_a_valid_crash_state() {
        let dir = tempdir("empty_tail");
        let mut log = SegmentedLog::create(&dir, 1).unwrap();
        for v in 1..=3 {
            log.append_update(&update(v)).unwrap();
        }
        drop(log);
        // Simulate: rotation created the next segment (header only), crash
        // before its first append.
        ChangelogWriter::create_at(dir.join(segment_file_name(4)), 4).unwrap();
        let scan = read_log_dir(&dir).unwrap();
        assert!(scan.end.is_clean());
        assert_eq!(scan.batches.len(), 3);

        let mut log = SegmentedLog::open_append(&dir, 1, 1).unwrap();
        assert_eq!(log.next_seq(), 4, "empty tail segment names its own base seq");
        log.append_update(&update(4)).unwrap();
        let scan = read_log_dir(&dir).unwrap();
        assert_eq!(scan.batches.last().unwrap().seq, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_header_tail_segment_is_torn_at_zero() {
        let dir = tempdir("torn_header");
        let mut log = SegmentedLog::create(&dir, 1).unwrap();
        log.append_update(&update(1)).unwrap();
        drop(log);
        // Crash mid-rotation: the successor file exists with 3 header bytes.
        std::fs::write(dir.join(segment_file_name(2)), [0x46, 0x56, 0x43]).unwrap();
        let scan = read_log_dir(&dir).unwrap();
        assert_eq!(scan.end, LogEnd::TornTail { valid_len: 0 });
        assert_eq!(scan.batches.len(), 1);

        // Reopen recreates the torn segment and continues at seq 2.
        let mut log = SegmentedLog::open_append(&dir, 1, 1).unwrap();
        assert_eq!(log.next_seq(), 2);
        log.append_update(&update(2)).unwrap();
        let scan = read_log_dir(&dir).unwrap();
        assert!(scan.end.is_clean());
        assert_eq!(scan.batches.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sealed_segment_damage_fails_loudly() {
        let dir = tempdir("sealed_damage");
        let mut log = SegmentedLog::create(&dir, 1).unwrap();
        for v in 1..=3 {
            log.append_update(&update(v)).unwrap();
        }
        drop(log);
        // Damage the *middle* segment: bit rot on a sealed file.
        crate::fault::flip_byte(dir.join(segment_file_name(2)), 12, 0x40).unwrap();
        let err = read_log_dir(&dir).unwrap_err();
        assert_eq!(err.kind(), "corrupt");
        assert!(err.to_string().contains("sealed"), "{err}");
        let err = SegmentedLog::open_append(&dir, 1, 1).map(|_| ()).unwrap_err();
        assert_eq!(err.kind(), "corrupt");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cross_segment_sequence_gaps_are_corruption() {
        let dir = tempdir("gap");
        let mut log = SegmentedLog::create(&dir, 1).unwrap();
        for v in 1..=4 {
            log.append_update(&update(v)).unwrap();
        }
        drop(log);
        // Delete a middle segment: the listing still sorts, but the chain
        // has a hole.
        std::fs::remove_file(dir.join(segment_file_name(2))).unwrap();
        let err = read_log_dir(&dir).unwrap_err();
        assert_eq!(err.kind(), "corrupt");
        assert!(err.to_string().contains("gap"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
