//! Fault-injected end-to-end suite for the CDC service front end
//! ([`fivm_cdc::CdcService`]): group commit, bounded-queue backpressure,
//! fsync poisoning, shutdown drain, and bounded disk under churn.
//!
//! Every scenario closes with the same differential check the recovery
//! suite uses: the service's engine — and an engine *recovered* from the
//! service's durable artifacts — must agree bit-for-bit with a reference
//! engine that applied the same acknowledged prefix uninterrupted.
//!
//! Determinism: the [`CommitGate`] fault hook parks the commit thread
//! *before* it drains a group, so tests can fill the queue against a
//! "stalled" pipeline without sleeping, and [`SyncFaults`] injects fsync
//! failures at exact points.

use fivm_cdc::{
    BackpressurePolicy, CdcService, CommitGate, DurableEngine, ServiceConfig, SyncFaults,
};
use fivm_core::{apps, Engine};
use fivm_data::retailer::{retailer_query_continuous, retailer_tree};
use fivm_data::{RetailerConfig, StreamConfig};
use fivm_query::ViewTree;
use fivm_relation::{Database, Relation, Tuple, Update};
use fivm_ring::RingCtx;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------- helpers

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fivm_cdc_svc_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Retailer COUNT workload, re-chunked into small batches so group commit
/// has many submissions to coalesce.
fn workload() -> (ViewTree, Database, Vec<Update>) {
    let cfg = RetailerConfig {
        locations: 6,
        dates: 10,
        items: 12,
        zips: 4,
        inventory_density: 0.25,
        seed: 21,
    };
    let db = cfg.generate();
    let updates = cfg
        .update_stream(StreamConfig {
            bulks: 4,
            bulk_size: 80,
            delete_fraction: 0.25,
            seed: 7,
        })
        .into_bulks();
    (retailer_tree(retailer_query_continuous()), db, rechunk(&updates, 10))
}

/// Splits each update into batches of at most `rows` rows.
fn rechunk(updates: &[Update], rows: usize) -> Vec<Update> {
    let mut out = Vec::new();
    for u in updates {
        for chunk in u.rows.chunks(rows) {
            out.push(Update::with_multiplicities(u.table.clone(), chunk.to_vec()));
        }
    }
    out
}

fn count_engine(tree: &ViewTree) -> Engine<i64> {
    let spec = tree.spec().clone();
    let ctx = RingCtx::new();
    Engine::new_with_ctx(tree.clone(), apps::count_lifts(&spec), ctx).unwrap()
}

/// Reference: uninterrupted load + the given batches.
fn reference(tree: &ViewTree, db: &Database, batches: &[Update]) -> Engine<i64> {
    let mut e = count_engine(tree);
    e.load_database(db).unwrap();
    for u in batches {
        e.apply_update(u).unwrap();
    }
    e
}

fn sorted_entries(rel: &Relation<i64>) -> Vec<(Tuple, i64)> {
    let mut entries: Vec<(Tuple, i64)> = rel.iter().map(|(k, p)| (k.clone(), *p)).collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries
}

fn assert_agree(want: &Engine<i64>, got: &Engine<i64>, ctx: &str) {
    assert_eq!(
        sorted_entries(&got.result_relation()),
        sorted_entries(&want.result_relation()),
        "{ctx}: results diverged"
    );
}

/// Recovers a fresh engine from the service's durable directory and
/// checks it agrees with a reference over the durable prefix.
fn assert_recovery_matches_prefix(
    tree: &ViewTree,
    db: &Database,
    batches: &[Update],
    dir: &PathBuf,
    acked_seq: u64,
    ctx: &str,
) -> u64 {
    let (recovered, report) = DurableEngine::recover(count_engine(tree), db, dir).unwrap();
    assert!(
        report.last_seq >= acked_seq,
        "{ctx}: recovery reached seq {} but {acked_seq} was acknowledged",
        report.last_seq
    );
    let want = reference(tree, db, &batches[..report.last_seq as usize]);
    assert_agree(&want, recovered.engine(), ctx);
    report.last_seq
}

// ----------------------------------------------------------------- tests

#[test]
fn group_commit_is_bit_identical_and_coalesces_fsyncs() {
    let (tree, db, batches) = workload();
    let dir = tempdir("group_commit");
    let gate = CommitGate::closed_gate();
    let config = ServiceConfig {
        queue_capacity: batches.len() + 1,
        group_commit_max: 8,
        commit_gate: Some(gate.clone()),
        ..ServiceConfig::default()
    };

    let mut engine = count_engine(&tree);
    engine.load_database(&db).unwrap();
    let service = CdcService::start(engine, &dir, config).unwrap();
    // Gate closed: every batch queues up; opening it drains in groups of
    // exactly group_commit_max — one fsync per group, not per batch.
    for u in &batches {
        service.submit(u.clone()).unwrap();
    }
    assert_eq!(service.queue_depth(), batches.len());
    gate.open();
    let durable = service.flush().unwrap();
    assert_eq!(durable, batches.len() as u64);

    let stats = service.stats();
    assert_eq!(stats.accepted_batches, batches.len() as u64);
    assert_eq!(stats.committed_groups, batches.len().div_ceil(8) as u64);
    assert_eq!(stats.shed_batches, 0);
    assert_eq!(stats.max_queue_depth, batches.len());

    let done = service.shutdown();
    assert!(done.error.is_none());
    assert_eq!(done.durable_seq, batches.len() as u64);
    assert_eq!(done.applied_seq, batches.len() as u64);
    assert_agree(&reference(&tree, &db, &batches), &done.engine, "group-commit/live");
    assert_recovery_matches_prefix(&tree, &db, &batches, &dir, done.durable_seq, "group-commit/recovered");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_fsync_poisons_the_service_and_acks_stop() {
    let (tree, db, batches) = workload();
    let dir = tempdir("fsync_poison");
    let faults: SyncFaults = Arc::new(std::sync::atomic::AtomicU32::new(0));
    let config = ServiceConfig {
        queue_capacity: batches.len() + 1,
        group_commit_max: 16,
        sync_faults: Some(Arc::clone(&faults)),
        ..ServiceConfig::default()
    };

    let mut engine = count_engine(&tree);
    engine.load_database(&db).unwrap();
    let service = CdcService::start(engine, &dir, config).unwrap();

    // Phase 1: a healthy prefix, fully acknowledged.
    let healthy = batches.len() / 2;
    for u in &batches[..healthy] {
        service.submit(u.clone()).unwrap();
    }
    let acked = service.flush().unwrap();
    assert_eq!(acked, healthy as u64);

    // Phase 2: arm one fsync failure and keep submitting.  The next
    // group's sync fails; nothing past the healthy prefix is ever acked.
    faults.store(1, Ordering::SeqCst);
    for u in &batches[healthy..] {
        if service.submit(u.clone()).is_err() {
            break; // poison propagated into submit — also correct
        }
    }
    let err = service.flush().unwrap_err();
    assert_eq!(err.kind(), "poisoned", "{err}");
    assert!(service.is_poisoned());
    let err = service.submit(batches[0].clone()).unwrap_err();
    assert_eq!(err.kind(), "poisoned", "{err}");

    let done = service.shutdown();
    let poison = done.error.expect("the injected fsync failure is reported");
    assert_eq!(poison.kind(), "io", "{poison}");
    assert_eq!(done.durable_seq, healthy as u64, "no ack after a failed sync");
    assert_eq!(done.applied_seq, healthy as u64, "poisoned groups are not applied");
    assert_agree(
        &reference(&tree, &db, &batches[..healthy]),
        &done.engine,
        "fsync-poison/live",
    );

    // Recovery reads the on-disk prefix.  The sync-failed group's bytes
    // may or may not have reached the disk (that is exactly why the
    // writer poisons); either way the acked prefix is covered and the
    // recovered state matches an uninterrupted run over what survived.
    let last = assert_recovery_matches_prefix(
        &tree,
        &db,
        &batches,
        &dir,
        done.durable_seq,
        "fsync-poison/recovered",
    );
    assert!(last <= batches.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_block_deadline_and_reject_are_typed_errors() {
    let (tree, db, batches) = workload();
    for (policy, expect_kind) in [
        (BackpressurePolicy::Block { deadline: Duration::from_millis(50) }, "backpressure"),
        (BackpressurePolicy::Reject, "backpressure"),
    ] {
        let dir = tempdir(if matches!(policy, BackpressurePolicy::Reject) {
            "bp_reject"
        } else {
            "bp_block"
        });
        let gate = CommitGate::closed_gate();
        let config = ServiceConfig {
            queue_capacity: 4,
            backpressure: policy,
            commit_gate: Some(gate.clone()),
            ..ServiceConfig::default()
        };
        let mut engine = count_engine(&tree);
        engine.load_database(&db).unwrap();
        let service = CdcService::start(engine, &dir, config).unwrap();

        // The gate stalls the pipeline before any drain: four batches fill
        // the queue, the fifth hits the policy.
        for u in &batches[..4] {
            service.submit(u.clone()).unwrap();
        }
        let err = service.submit(batches[4].clone()).unwrap_err();
        assert_eq!(err.kind(), expect_kind, "{err}");
        assert!(err.to_string().contains("4 batches queued"), "{err}");
        assert_eq!(service.queue_depth(), 4, "the refused batch was not enqueued");

        // Unstall: the four accepted batches commit and apply; the refused
        // one is gone without a trace.
        gate.open();
        assert_eq!(service.flush().unwrap(), 4);
        let done = service.shutdown();
        assert!(done.error.is_none());
        assert_eq!(done.stats.shed_batches, 0);
        assert_agree(&reference(&tree, &db, &batches[..4]), &done.engine, "backpressure/live");
        assert_recovery_matches_prefix(&tree, &db, &batches, &dir, 4, "backpressure/recovered");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn shed_oldest_drops_pending_batches_without_acking_them() {
    let (tree, db, batches) = workload();
    let dir = tempdir("bp_shed");
    let gate = CommitGate::closed_gate();
    let config = ServiceConfig {
        queue_capacity: 4,
        backpressure: BackpressurePolicy::ShedOldest,
        commit_gate: Some(gate.clone()),
        ..ServiceConfig::default()
    };
    let mut engine = count_engine(&tree);
    engine.load_database(&db).unwrap();
    let service = CdcService::start(engine, &dir, config).unwrap();

    // Six submissions into a stalled queue of four: batches 0 and 1 are
    // shed (oldest first), 2..=5 survive.
    for u in &batches[..6] {
        service.submit(u.clone()).unwrap();
    }
    assert_eq!(service.queue_depth(), 4);
    gate.open();
    service.flush().unwrap();
    let done = service.shutdown();
    assert!(done.error.is_none());
    assert_eq!(done.stats.shed_batches, 2);
    assert_eq!(done.stats.accepted_batches, 6);
    assert_eq!(done.durable_seq, 4, "four batches were committed");

    // The surviving stream is batches[2..6], in order — the shed ones
    // left no trace in the engine or the log.
    assert_agree(&reference(&tree, &db, &batches[2..6]), &done.engine, "shed/live");
    let (recovered, report) = DurableEngine::recover(count_engine(&tree), &db, &dir).unwrap();
    assert_eq!(report.last_seq, 4);
    assert_agree(&reference(&tree, &db, &batches[2..6]), recovered.engine(), "shed/recovered");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_every_accepted_batch_durably() {
    let (tree, db, batches) = workload();
    let dir = tempdir("shutdown_drain");
    let config = ServiceConfig {
        queue_capacity: batches.len() + 1,
        group_commit_max: 8,
        ..ServiceConfig::default()
    };
    let mut engine = count_engine(&tree);
    engine.load_database(&db).unwrap();
    let service = CdcService::start(engine, &dir, config).unwrap();
    for u in &batches {
        service.submit(u.clone()).unwrap();
    }
    // No flush: shutdown itself must drain everything accepted.
    let done = service.shutdown();
    assert!(done.error.is_none());
    assert_eq!(done.durable_seq, batches.len() as u64);
    assert_eq!(done.applied_seq, batches.len() as u64);
    assert_agree(&reference(&tree, &db, &batches), &done.engine, "drain/live");
    assert_recovery_matches_prefix(&tree, &db, &batches, &dir, done.durable_seq, "drain/recovered");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn churn_stream_disk_plateaus_under_retirement() {
    // An "infinite" churn stream: the same rows inserted and deleted over
    // and over.  Sequence numbers grow forever, engine state stays small,
    // and with snapshots + retirement the changelog's on-disk footprint
    // must plateau instead of growing with the stream.
    let (tree, db, batches) = workload();
    let dir = tempdir("bounded_disk");
    let config = ServiceConfig {
        queue_capacity: 64,
        group_commit_max: 4,
        max_segment_bytes: 4 * 1024,
        snapshot_every_batches: Some(16),
        retire_segments: true,
        ..ServiceConfig::default()
    };
    let mut engine = count_engine(&tree);
    engine.load_database(&db).unwrap();
    let service = CdcService::start(engine, &dir, config.clone()).unwrap();

    let churn_rounds = 400;
    let up = &batches[0];
    let down = up.inverse();
    for _ in 0..churn_rounds {
        service.submit(up.clone()).unwrap();
        service.submit(down.clone()).unwrap();
    }
    service.flush().unwrap();
    let done = service.shutdown();
    assert!(done.error.is_none());
    assert_eq!(done.durable_seq, (churn_rounds * 2) as u64);

    // Disk plateau: every batch is ~hundreds of bytes, so the stream
    // appended far more than the retained bound; retirement must have
    // kept the live footprint to a handful of segments.
    let cap = 16 * config.max_segment_bytes;
    assert!(done.stats.retired_segments > 10, "stats: {:?}", done.stats);
    assert!(
        done.stats.max_changelog_bytes < cap,
        "changelog peaked at {} bytes (cap {cap}): retirement is not keeping up",
        done.stats.max_changelog_bytes
    );
    let appended_lower_bound = (churn_rounds * 2) as u64 * 40;
    assert!(
        appended_lower_bound > 2 * done.stats.max_changelog_bytes,
        "churn stream too small to demonstrate a plateau"
    );
    assert!(done.stats.snapshots > 10);

    // The retained suffix still recovers to the exact final state.
    let (recovered, report) = DurableEngine::recover(count_engine(&tree), &db, &dir).unwrap();
    assert_eq!(report.last_seq, done.durable_seq);
    assert_agree(&done.engine, recovered.engine(), "bounded-disk/recovered");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn service_resumes_from_recovered_artifacts() {
    // Crash/restart round trip through the service API itself:
    // start → ingest → shutdown → start_recovered → ingest the rest.
    let (tree, db, batches) = workload();
    let dir = tempdir("service_resume");
    let half = batches.len() / 2;
    let config = ServiceConfig {
        queue_capacity: batches.len() + 1,
        snapshot_every_batches: Some(8),
        ..ServiceConfig::default()
    };

    let mut engine = count_engine(&tree);
    engine.load_database(&db).unwrap();
    let service = CdcService::start(engine, &dir, config.clone()).unwrap();
    for u in &batches[..half] {
        service.submit(u.clone()).unwrap();
    }
    let done = service.shutdown();
    assert!(done.error.is_none());
    assert_eq!(done.durable_seq, half as u64);

    let (service, report) =
        CdcService::start_recovered(count_engine(&tree), &db, &dir, config).unwrap();
    assert_eq!(report.last_seq, half as u64);
    assert_eq!(service.durable_seq(), half as u64);
    for u in &batches[half..] {
        service.submit(u.clone()).unwrap();
    }
    assert_eq!(service.flush().unwrap(), batches.len() as u64);
    let done = service.shutdown();
    assert!(done.error.is_none());
    assert_agree(&reference(&tree, &db, &batches), &done.engine, "resume/live");
    assert_recovery_matches_prefix(&tree, &db, &batches, &dir, done.durable_seq, "resume/recovered");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovered_service_survives_torn_tail_and_continues() {
    // Torn group tail + service restart: the torn batch was never acked,
    // recovery truncates it, and the resumed service re-ingests it.
    let (tree, db, batches) = workload();
    let dir = tempdir("service_torn");
    let config = ServiceConfig {
        queue_capacity: batches.len() + 1,
        ..ServiceConfig::default()
    };
    let mut engine = count_engine(&tree);
    engine.load_database(&db).unwrap();
    let service = CdcService::start(engine, &dir, config.clone()).unwrap();
    let half = batches.len() / 2;
    for u in &batches[..half] {
        service.submit(u.clone()).unwrap();
    }
    service.flush().unwrap();
    let done = service.shutdown();
    assert!(done.error.is_none());

    // Crash artifact: a half-appended record at the end of the active
    // segment (the next batch's frame, cut short).
    let segs = fivm_cdc::list_segments(&dir).unwrap();
    let active = &segs.last().unwrap().path;
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(active).unwrap();
        f.write_all(&[0x99; 11]).unwrap();
    }

    let (service, report) =
        CdcService::start_recovered(count_engine(&tree), &db, &dir, config).unwrap();
    assert_eq!(report.last_seq, half as u64, "torn bytes were never durable");
    assert!(!report.log_end.is_clean());
    for u in &batches[half..] {
        service.submit(u.clone()).unwrap();
    }
    assert_eq!(service.flush().unwrap(), batches.len() as u64);
    let done = service.shutdown();
    assert!(done.error.is_none());
    assert_agree(&reference(&tree, &db, &batches), &done.engine, "torn/live");
    assert_recovery_matches_prefix(&tree, &db, &batches, &dir, done.durable_seq, "torn/recovered");
    let _ = std::fs::remove_dir_all(&dir);
}
