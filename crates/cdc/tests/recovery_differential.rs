//! Fault-injected crash-recovery differential: Retailer and Favorita
//! streams, COUNT / COVAR / MI applications.
//!
//! Every scenario compares a **recovered** engine against a **reference**
//! engine that applied the same durable prefix uninterrupted.  Agreement
//! is bit-for-bit (`==` on ring payloads): COUNT uses `i64`; MI payloads
//! are integer-valued `f64` counts; COVAR runs on quantized streams
//! (continuous values rounded to integers), so all float arithmetic is
//! exact and any divergence is a real state difference, not rounding.
//! Payload `==` on relational interiors is dictionary-independent here
//! because every categorical value in these workloads is an integer (see
//! `crates/shard/tests/differential.rs` for the string caveat).
//!
//! Injected faults, per workload/application configuration:
//!
//! * crash after a snapshot, tail replayed from the changelog;
//! * crash between the write-ahead log append and the engine apply;
//! * short write / torn tail at several cut points inside the last record;
//! * flipped payload byte and flipped checksum byte mid-log;
//! * crash mid-snapshot-write (stray `.tmp`, previous snapshot intact);
//! * corrupt snapshot detected, recovery falls back to full replay;
//! * crashes at segment-rotation and retirement boundaries, replay across
//!   ≥3 segments with interleaved snapshots, and an empty tail segment
//!   (rotation happened, crash before its first append).
//!
//! After a snapshot restore the hash-once contract must survive:
//! `rehashes` and `ring_rehashes` read 0 on the recovered engine.

use fivm_cdc::{
    changelog, fault, framing, recover, segment_file_name, snapshot, DurableEngine, LogEnd,
    SNAPSHOT_FILE,
};
use fivm_common::Value;
use fivm_core::{apps, AggregateLayout, BinSpec, Engine};
use fivm_data::retailer::{retailer_query_continuous, retailer_tree};
use fivm_data::{FavoritaConfig, RetailerConfig, StreamConfig};
use fivm_query::ViewTree;
use fivm_relation::{BaseTable, Database, Relation, Tuple, Update};
use fivm_ring::{LiftFn, PersistRing, Ring, RingCtx};
use std::collections::HashMap;
use std::path::PathBuf;

// ---------------------------------------------------------------- helpers

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fivm_cdc_diff_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn quantize_value(v: &Value) -> Value {
    match v {
        Value::Double(d) => Value::double(d.get().round()),
        other => other.clone(),
    }
}

fn quantize_tuple(t: &[Value]) -> Tuple {
    t.iter().map(quantize_value).collect::<Vec<_>>().into_boxed_slice()
}

fn quantize_updates(updates: &[Update]) -> Vec<Update> {
    updates
        .iter()
        .map(|u| {
            Update::with_multiplicities(
                u.table.clone(),
                u.rows.iter().map(|(r, m)| (quantize_tuple(r), *m)).collect(),
            )
        })
        .collect()
}

fn quantize_database(db: &Database) -> Database {
    let mut out = Database::new();
    for table in db.tables() {
        let mut t = BaseTable::new(table.name.clone(), table.schema.clone());
        for (row, mult) in &table.rows {
            t.push_with_multiplicity(quantize_tuple(row), *mult);
        }
        out.add_table(t).expect("names stay unique");
    }
    out
}

fn sorted_entries<R: Ring>(rel: &Relation<R>) -> Vec<(Tuple, R)> {
    let mut entries: Vec<(Tuple, R)> = rel.iter().map(|(k, p)| (k.clone(), p.clone())).collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries
}

/// Asserts two engines' results are bit-for-bit equal, then applies one
/// extra probe batch to both and re-compares — a divergence anywhere in
/// the interior views would surface in the probe's delta propagation.
fn assert_engines_agree<R: Ring>(
    reference: &mut Engine<R>,
    recovered: &mut Engine<R>,
    probe: Option<&Update>,
    ctx: &str,
) {
    let want = sorted_entries(&reference.result_relation());
    let got = sorted_entries(&recovered.result_relation());
    assert_eq!(got.len(), want.len(), "{ctx}: result cardinality diverged");
    for ((gk, gp), (wk, wp)) in got.iter().zip(want.iter()) {
        assert_eq!(gk, wk, "{ctx}: decoded keys diverged");
        assert!(gp == wp, "{ctx}: payload not bit-for-bit equal at key {gk:?}");
    }
    if let Some(u) = probe {
        reference.apply_update(u).expect("reference probe");
        recovered.apply_update(u).expect("recovered probe");
        let want = sorted_entries(&reference.result_relation());
        let got = sorted_entries(&recovered.result_relation());
        assert_eq!(got.len(), want.len(), "{ctx}: post-probe cardinality diverged");
        for ((gk, gp), (wk, wp)) in got.iter().zip(want.iter()) {
            assert_eq!(gk, wk);
            assert!(gp == wp, "{ctx}: post-probe payload diverged at key {gk:?}");
        }
    }
}

/// One workload/application configuration under test.
struct Config<R: PersistRing, F: Fn(&RingCtx) -> Vec<LiftFn<R>>> {
    tree: ViewTree,
    lifts: F,
    db: Database,
    updates: Vec<Update>,
    label: &'static str,
}

impl<R: PersistRing, F: Fn(&RingCtx) -> Vec<LiftFn<R>>> Config<R, F> {
    fn fresh_engine(&self) -> Engine<R> {
        let ctx = RingCtx::new();
        Engine::new_with_ctx(self.tree.clone(), (self.lifts)(&ctx), ctx).expect("engine")
    }

    /// Reference: uninterrupted load + the first `prefix` update batches.
    fn reference(&self, prefix: usize) -> Engine<R> {
        let mut e = self.fresh_engine();
        e.load_database(&self.db).expect("reference load");
        for u in &self.updates[..prefix] {
            e.apply_update(u).expect("reference update");
        }
        e
    }

    /// A probe batch re-inserting then deleting some base fact rows
    /// (net-zero), used to shake divergences out of interior views.
    fn probe(&self) -> Update {
        let fact = &self.updates[0].table;
        let rows: Vec<(Tuple, i64)> = self.db.table(fact).expect("fact table").rows
            [..8]
            .iter()
            .flat_map(|(r, _)| [(r.clone(), 1), (r.clone(), -1)])
            .collect();
        Update::with_multiplicities(fact.clone(), rows)
    }
}

/// Runs every fault scenario against one configuration.
fn exercise<R: PersistRing, F: Fn(&RingCtx) -> Vec<LiftFn<R>>>(cfg: &Config<R, F>) {
    let n = cfg.updates.len();
    assert!(n >= 4, "need a few batches to place faults between");
    let dir = tempdir(cfg.label);
    // The default segment bound is far above these tiny streams, so the
    // whole log lives in the first (active) segment — single-file faults
    // below target it directly.  Multi-segment faults have their own
    // scenarios further down.
    let log_path = dir.join(segment_file_name(1));
    let snap_path = dir.join(SNAPSHOT_FILE);
    // A kept copy of the snapshot at seq n-1, for scenarios that need the
    // last batch to live only in the changelog tail.
    let tail_snap = dir.join("snapshot_tail.fvsn");

    // ---- Build the durable run: load, apply all batches; snapshot at
    // n-1 (copied aside) and again at n.
    let mut durable = DurableEngine::create(cfg.fresh_engine(), &dir).expect("create");
    durable.load_database(&cfg.db).expect("load");
    let mut tail_snap_seq = 0;
    for (i, u) in cfg.updates.iter().enumerate() {
        durable.apply_update(u).expect("durable update");
        if i + 2 == n {
            tail_snap_seq = durable.snapshot().expect("snapshot");
            std::fs::copy(&snap_path, &tail_snap).unwrap();
        }
    }
    assert_eq!(tail_snap_seq, (n - 1) as u64);
    assert_eq!(durable.snapshot().expect("final snapshot"), n as u64);
    drop(durable);

    // ---- Scenario 1: clean crash right after a snapshot.  Restore is a
    // pure re-bucketing from stored hashes into right-sized tables — the
    // hash-once contract carries over the restart: zero rehashes.
    {
        let engine = cfg.fresh_engine();
        let (recovered, report) =
            DurableEngine::recover(engine, &cfg.db, &dir).map_err(|e| e.to_string()).expect("recover");
        assert_eq!(report.snapshot_seq, Some(n as u64));
        assert_eq!(report.replayed_batches, 0, "snapshot already covers the log");
        assert_eq!(report.last_seq, n as u64);
        assert!(report.log_end.is_clean());
        let mut recovered = recovered.into_engine();
        let stats = recovered.stats();
        assert_eq!(stats.rehashes, 0, "{}: view tables rehashed on restore", cfg.label);
        assert_eq!(stats.ring_rehashes, 0, "{}: ring tables rehashed on restore", cfg.label);
        assert_engines_agree(
            &mut cfg.reference(n),
            &mut recovered,
            Some(&cfg.probe()),
            &format!("{}/snapshot-at-head", cfg.label),
        );
    }

    // ---- Scenario 2: crash between WAL append and engine apply — the
    // snapshot knows seq n-1, batch n is durable only in the changelog.
    // Recovery must replay the tail and converge on the state that
    // *includes* the appended batch.
    {
        let mut engine = cfg.fresh_engine();
        let report = recover::recover(&mut engine, &cfg.db, Some(&tail_snap), &dir)
            .expect("recover primitives");
        assert_eq!(report.snapshot_seq, Some(tail_snap_seq));
        assert_eq!(report.replayed_batches, 1, "one batch after the snapshot");
        assert_eq!(report.last_seq, n as u64);
        assert_engines_agree(
            &mut cfg.reference(n),
            &mut engine,
            Some(&cfg.probe()),
            &format!("{}/append-before-apply", cfg.label),
        );
    }

    // ---- Scenario 3: torn tails.  Cut the last record at several points
    // (1 byte short, mid-payload, inside the length field): the last
    // batch was never durable, recovery yields the n-1 state.
    let full_log = std::fs::read(&log_path).unwrap();
    let offsets = record_offsets(&full_log);
    let (last_start, last_len) = *offsets.last().unwrap();
    for cut in [
        full_log.len() - 1,                              // short write
        last_start + framing::RECORD_OVERHEAD + last_len / 2, // mid-payload
        last_start + 2,                                  // inside the length field
    ] {
        std::fs::write(&log_path, &full_log).unwrap();
        fault::truncate_to(&log_path, cut as u64).unwrap();
        let (batches, end) = changelog::read_changelog(&log_path).expect("torn log reads");
        assert_eq!(batches.len(), n - 1, "cut at {cut}");
        assert_eq!(end, LogEnd::TornTail { valid_len: last_start });

        let mut engine = cfg.fresh_engine();
        let report = recover::recover(&mut engine, &cfg.db, Some(&tail_snap), &dir)
            .expect("recover torn");
        assert_eq!(report.last_seq, (n - 1) as u64);
        assert_eq!(report.log_end, LogEnd::TornTail { valid_len: last_start });
        assert_engines_agree(
            &mut cfg.reference(n - 1),
            &mut engine,
            None,
            &format!("{}/torn@{cut}", cfg.label),
        );
    }

    // ---- Scenario 4: corruption mid-log.  Flip a payload byte, then a
    // checksum byte, of the second-to-last record: durability ends before
    // it, even though later records are intact.
    let (victim_start, _) = offsets[offsets.len() - 2];
    for (what, offset) in [
        ("payload", victim_start + framing::RECORD_OVERHEAD + 3),
        ("checksum", victim_start + 4),
    ] {
        std::fs::write(&log_path, &full_log).unwrap();
        fault::flip_byte(&log_path, offset as u64, 0x20).unwrap();
        let (batches, end) = changelog::read_changelog(&log_path).expect("corrupt log reads");
        assert_eq!(batches.len(), n - 2, "flipped {what} byte");
        assert_eq!(end, LogEnd::Corrupt { valid_len: victim_start });

        let mut engine = cfg.fresh_engine();
        let report = recover::recover(&mut engine, &cfg.db, Some(&tail_snap), &dir)
            .expect("recover corrupt");
        // Snapshot (at n-1) is *newer* than the durable log prefix (n-2):
        // replay applies nothing and the state is the snapshot's.
        assert_eq!(report.last_seq, (n - 1) as u64);
        assert_engines_agree(
            &mut cfg.reference(n - 1),
            &mut engine,
            None,
            &format!("{}/corrupt-{what}", cfg.label),
        );
    }
    std::fs::write(&log_path, &full_log).unwrap();

    // ---- Scenario 5: crash mid-snapshot-save leaves a stray tmp; the
    // real snapshot and recovery are unaffected.
    {
        std::fs::write(snap_path.with_extension("tmp"), b"half-written garbage").unwrap();
        let mut engine = cfg.fresh_engine();
        let report = recover::recover(&mut engine, &cfg.db, Some(&snap_path), &dir)
            .expect("recover with stray tmp");
        assert_eq!(report.last_seq, n as u64);
        assert_engines_agree(
            &mut cfg.reference(n),
            &mut engine,
            None,
            &format!("{}/stray-tmp", cfg.label),
        );
    }

    // ---- Scenario 6: the snapshot itself is corrupt — detected by
    // checksum, and a full replay of the (intact) log still recovers.
    {
        let snap_len = fault::file_len(&snap_path).unwrap();
        fault::flip_byte(&snap_path, snap_len / 2, 0x01).unwrap();
        let mut engine = cfg.fresh_engine();
        let err = recover::recover(&mut engine, &cfg.db, Some(&snap_path), &dir)
            .expect_err("corrupt snapshot must not restore");
        assert_eq!(err.kind(), "corrupt", "{}: {err}", cfg.label);

        // Fallback: ignore the snapshot, replay everything.
        let mut engine = cfg.fresh_engine();
        let report =
            recover::recover(&mut engine, &cfg.db, None, &dir).expect("full replay");
        assert_eq!(report.snapshot_seq, None);
        assert_eq!(report.replayed_batches, n);
        assert_engines_agree(
            &mut cfg.reference(n),
            &mut engine,
            Some(&cfg.probe()),
            &format!("{}/full-replay", cfg.label),
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Byte offsets `(start, payload_len)` of every record in a framed file.
fn record_offsets(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut pos = framing::HEADER_LEN;
    while pos + framing::RECORD_OVERHEAD <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        out.push((pos, len));
        pos += framing::RECORD_OVERHEAD + len;
    }
    out
}

// ------------------------------------------------------------- workloads

fn retailer_workload() -> (ViewTree, Database, Vec<Update>) {
    let cfg = RetailerConfig {
        locations: 6,
        dates: 10,
        items: 12,
        zips: 4,
        inventory_density: 0.25,
        seed: 21,
    };
    let db = cfg.generate();
    let updates = cfg
        .update_stream(StreamConfig {
            bulks: 6,
            bulk_size: 80,
            delete_fraction: 0.25,
            seed: 7,
        })
        .into_bulks();
    (retailer_tree(retailer_query_continuous()), db, updates)
}

fn favorita_workload() -> (ViewTree, Database, Vec<Update>) {
    let cfg = FavoritaConfig::tiny();
    let db = cfg.generate();
    let updates = cfg
        .update_stream(StreamConfig {
            bulks: 6,
            bulk_size: 60,
            delete_fraction: 0.25,
            seed: 13,
        })
        .into_bulks();
    let spec = fivm_data::favorita::favorita_query();
    (fivm_data::favorita::favorita_tree(spec), db, updates)
}

fn mi_binnings(spec: &fivm_query::QuerySpec) -> HashMap<usize, BinSpec> {
    let layout = AggregateLayout::of(spec);
    let mut bins = HashMap::new();
    for (pos, &v) in layout.vars.iter().enumerate() {
        if layout.kinds[pos].is_continuous() {
            bins.insert(v, BinSpec::new(0.0, 1_000.0, 8));
        }
    }
    bins
}

// ----------------------------------------------------------------- tests

#[test]
fn count_recovers_bit_identically_on_both_datasets() {
    let (tree, db, updates) = retailer_workload();
    let spec = tree.spec().clone();
    exercise(&Config {
        tree,
        lifts: move |_: &RingCtx| apps::count_lifts(&spec),
        db,
        updates,
        label: "retailer_count",
    });

    let (tree, db, updates) = favorita_workload();
    let spec = tree.spec().clone();
    exercise(&Config {
        tree,
        lifts: move |_: &RingCtx| apps::count_lifts(&spec),
        db,
        updates,
        label: "favorita_count",
    });
}

#[test]
fn covar_recovers_bit_identically_on_quantized_streams() {
    let (tree, db, updates) = retailer_workload();
    let spec = tree.spec().clone();
    exercise(&Config {
        tree,
        lifts: move |_: &RingCtx| apps::covar_lifts(&spec).unwrap(),
        db: quantize_database(&db),
        updates: quantize_updates(&updates),
        label: "retailer_covar",
    });

    let (tree, db, updates) = favorita_workload();
    let spec = tree.spec().clone();
    exercise(&Config {
        tree,
        lifts: move |ctx: &RingCtx| apps::gen_covar_lifts(&spec, ctx),
        db: quantize_database(&db),
        updates: quantize_updates(&updates),
        label: "favorita_covar",
    });
}

#[test]
fn mi_recovers_bit_identically_on_both_datasets() {
    let (tree, db, updates) = retailer_workload();
    let spec = tree.spec().clone();
    let bins = mi_binnings(&spec);
    exercise(&Config {
        tree,
        lifts: move |ctx: &RingCtx| apps::mi_lifts(&spec, &bins, ctx).unwrap(),
        db,
        updates,
        label: "retailer_mi",
    });

    let (tree, db, updates) = favorita_workload();
    let spec = tree.spec().clone();
    let bins = mi_binnings(&spec);
    exercise(&Config {
        tree,
        lifts: move |ctx: &RingCtx| apps::mi_lifts(&spec, &bins, ctx).unwrap(),
        db,
        updates,
        label: "favorita_mi",
    });
}

#[test]
fn recovery_report_shape_and_log_reopen_after_crash() {
    // A compact end-to-end: crash with a torn tail, recover through
    // DurableEngine (which truncates the torn bytes), keep ingesting, and
    // verify the continued run equals an uninterrupted one.
    let (tree, db, updates) = retailer_workload();
    let spec = tree.spec().clone();
    let lifts = move |_: &RingCtx| apps::count_lifts(&spec);
    let make_engine = |tree: &ViewTree| {
        let ctx = RingCtx::new();
        Engine::new_with_ctx(tree.clone(), lifts(&ctx), ctx).unwrap()
    };
    let n = updates.len();
    let dir = tempdir("reopen_e2e");

    let mut durable = DurableEngine::create(make_engine(&tree), &dir).unwrap();
    durable.load_database(&db).unwrap();
    for u in &updates[..n - 1] {
        durable.apply_update(u).unwrap();
    }
    durable.snapshot().unwrap();
    drop(durable);
    // Torn append of the would-be next batch: header-only fragment.
    let log_path = dir.join(segment_file_name(1));
    let mut broken = std::fs::OpenOptions::new().append(true).open(&log_path).unwrap();
    use std::io::Write;
    broken.write_all(&[0x55; 5]).unwrap();
    drop(broken);

    let (mut durable, report) = DurableEngine::recover(make_engine(&tree), &db, &dir).unwrap();
    assert_eq!(report.snapshot_seq, Some((n - 1) as u64));
    assert_eq!(report.replayed_batches, 0);
    assert!(matches!(report.log_end, LogEnd::TornTail { .. }));

    // Continue ingesting where durability left off; compare to a
    // reference that never crashed.
    durable.apply_update(&updates[n - 1]).unwrap();
    assert_eq!(durable.applied_seq(), n as u64);
    let mut reference = make_engine(&tree);
    reference.load_database(&db).unwrap();
    for u in &updates {
        reference.apply_update(u).unwrap();
    }
    let mut recovered = durable.into_engine();
    assert_engines_agree(&mut reference, &mut recovered, None, "reopen_e2e");

    // The reopened log is fully durable again: one more recovery from the
    // same directory replays cleanly to the same state.
    let (final_engine, report) = DurableEngine::recover(make_engine(&tree), &db, &dir).unwrap();
    assert!(report.log_end.is_clean());
    assert_eq!(report.last_seq, n as u64);
    let mut final_engine = final_engine.into_engine();
    assert_engines_agree(&mut reference, &mut final_engine, None, "reopen_e2e/second");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_mismatches_are_typed_errors() {
    // Restoring a COUNT snapshot into a COVAR engine (wrong ring), or into
    // a non-empty engine, fails loudly instead of corrupting state.
    let (tree, db, updates) = retailer_workload();
    let spec = tree.spec().clone();
    let dir = tempdir("mismatch");
    let count_lifts = apps::count_lifts(&spec);
    let mut engine = Engine::new(tree.clone(), count_lifts.clone()).unwrap();
    engine.load_database(&db).unwrap();
    engine.apply_update(&updates[0]).unwrap();
    let snap = dir.join(SNAPSHOT_FILE);
    snapshot::write_snapshot(&snap, 1, &engine).unwrap();

    // Wrong ring.
    let mut covar = Engine::new(tree.clone(), apps::covar_lifts(&spec).unwrap()).unwrap();
    let err = snapshot::load_snapshot(&snap, &mut covar).unwrap_err();
    assert_eq!(err.kind(), "state");
    assert!(err.to_string().contains("ring"), "{err}");

    // Non-empty target.
    let mut busy = Engine::new(tree, count_lifts).unwrap();
    busy.load_database(&db).unwrap();
    let err = snapshot::load_snapshot(&snap, &mut busy).unwrap_err();
    assert_eq!(err.kind(), "state");
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------- segmented-log scenarios

/// Retailer COUNT engine (i64 ring) for the segmented-log scenarios.
fn count_engine(tree: &ViewTree) -> Engine<i64> {
    let spec = tree.spec().clone();
    let ctx = RingCtx::new();
    Engine::new_with_ctx(tree.clone(), apps::count_lifts(&spec), ctx).unwrap()
}

fn count_reference(tree: &ViewTree, db: &Database, updates: &[Update]) -> Engine<i64> {
    let mut e = count_engine(tree);
    e.load_database(db).unwrap();
    for u in updates {
        e.apply_update(u).unwrap();
    }
    e
}

#[test]
fn replay_crosses_segment_boundaries_with_interleaved_snapshots() {
    // A 1-byte rotation bound puts every batch in its own segment: six
    // updates, six segments, snapshots interleaved after batches 2 and 4.
    let (tree, db, updates) = retailer_workload();
    let n = updates.len();
    assert!(n >= 6);
    let dir = tempdir("segments_interleaved");
    let snap_path = dir.join(SNAPSHOT_FILE);
    let snap2 = dir.join("snapshot_seq2.fvsn");

    let mut durable = DurableEngine::create_with(count_engine(&tree), &dir, 1).unwrap();
    durable.load_database(&db).unwrap();
    for (i, u) in updates.iter().enumerate() {
        durable.apply_update(u).unwrap();
        if i + 1 == 2 {
            assert_eq!(durable.snapshot().unwrap(), 2);
            std::fs::copy(&snap_path, &snap2).unwrap();
        }
        if i + 1 == 4 {
            assert_eq!(durable.snapshot().unwrap(), 4);
        }
    }
    drop(durable);
    assert_eq!(fivm_cdc::list_segments(&dir).unwrap().len(), n);

    // Full replay, no snapshot: every batch, across every boundary.
    let mut replayed = count_engine(&tree);
    let report = recover::recover(&mut replayed, &db, None, &dir).unwrap();
    assert_eq!(report.replayed_batches, n);
    assert_eq!(report.segments_scanned, n);
    assert!(report.log_end.is_clean());
    assert_engines_agree(
        &mut count_reference(&tree, &db, &updates),
        &mut replayed,
        None,
        "segments/full-replay",
    );

    // Old interleaved snapshot: replay the tail across >= 3 segments.
    let mut tailed = count_engine(&tree);
    let report = recover::recover(&mut tailed, &db, Some(&snap2), &dir).unwrap();
    assert_eq!(report.snapshot_seq, Some(2));
    assert_eq!(report.replayed_batches, n - 2);
    assert_engines_agree(
        &mut count_reference(&tree, &db, &updates),
        &mut tailed,
        None,
        "segments/interleaved-snapshot",
    );

    // The DurableEngine path uses the newest on-disk snapshot (seq 4).
    let (recovered, report) = DurableEngine::recover(count_engine(&tree), &db, &dir).unwrap();
    assert_eq!(report.snapshot_seq, Some(4));
    assert_eq!(report.replayed_batches, n - 4);
    assert_eq!(report.last_seq, n as u64);
    let mut recovered = recovered.into_engine();
    assert_engines_agree(
        &mut count_reference(&tree, &db, &updates),
        &mut recovered,
        None,
        "segments/durable-recover",
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retirement_and_crash_mid_retirement_recover() {
    let (tree, db, updates) = retailer_workload();
    let n = updates.len();
    let dir = tempdir("retirement");
    let snap_path = dir.join(SNAPSHOT_FILE);
    let snap2 = dir.join("snapshot_seq2.fvsn");

    let mut durable = DurableEngine::create_with(count_engine(&tree), &dir, 1).unwrap();
    durable.load_database(&db).unwrap();
    for (i, u) in updates.iter().enumerate() {
        durable.apply_update(u).unwrap();
        if i + 1 == 2 {
            durable.snapshot().unwrap();
            std::fs::copy(&snap_path, &snap2).unwrap();
        }
    }
    let snap_seq = durable.snapshot().unwrap();
    assert_eq!(snap_seq, n as u64);
    let bytes_before = durable.changelog_bytes();

    // Retire everything the snapshot covers: only the active segment
    // survives, and disk shrinks accordingly.
    let retired = durable.retire_segments(snap_seq).unwrap();
    assert_eq!(retired, n - 1, "all sealed segments are snapshot-covered");
    assert!(durable.changelog_bytes() < bytes_before);
    drop(durable);
    assert_eq!(fivm_cdc::list_segments(&dir).unwrap().len(), 1);

    // Recovery from snapshot + the remaining segment is bit-identical.
    let (recovered, report) = DurableEngine::recover(count_engine(&tree), &db, &dir).unwrap();
    assert_eq!(report.snapshot_seq, Some(n as u64));
    assert_eq!(report.replayed_batches, 0);
    let mut recovered = recovered.into_engine();
    assert_engines_agree(
        &mut count_reference(&tree, &db, &updates),
        &mut recovered,
        None,
        "retirement/after-retire",
    );

    // An outdated snapshot cannot bridge the retired gap: typed error,
    // not a silent skip.
    let mut stale = count_engine(&tree);
    let err = recover::recover(&mut stale, &db, Some(&snap2), &dir).unwrap_err();
    assert_eq!(err.kind(), "corrupt");
    assert!(err.to_string().contains("retired"), "{err}");

    // Crash *mid*-retirement: rebuild, then delete only the oldest two
    // sealed segments by hand (retirement deletes oldest-first, so a
    // crash partway leaves exactly this contiguous suffix).
    let dir2 = tempdir("retirement_crash");
    let mut durable = DurableEngine::create_with(count_engine(&tree), &dir2, 1).unwrap();
    durable.load_database(&db).unwrap();
    for u in &updates {
        durable.apply_update(u).unwrap();
    }
    assert_eq!(durable.snapshot().unwrap(), n as u64);
    drop(durable);
    std::fs::remove_file(dir2.join(segment_file_name(1))).unwrap();
    std::fs::remove_file(dir2.join(segment_file_name(2))).unwrap();
    let (recovered, report) = DurableEngine::recover(count_engine(&tree), &db, &dir2).unwrap();
    assert_eq!(report.snapshot_seq, Some(n as u64));
    assert_eq!(report.segments_scanned, n - 2);
    let mut recovered = recovered.into_engine();
    assert_engines_agree(
        &mut count_reference(&tree, &db, &updates),
        &mut recovered,
        None,
        "retirement/mid-crash",
    );
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn rotation_crashes_leave_recoverable_tail_segments() {
    let (tree, db, updates) = retailer_workload();
    let dir = tempdir("rotation_crash");

    let mut durable = DurableEngine::create_with(count_engine(&tree), &dir, 1).unwrap();
    durable.load_database(&db).unwrap();
    for u in &updates[..3] {
        durable.apply_update(u).unwrap();
    }
    drop(durable);
    assert_eq!(fivm_cdc::list_segments(&dir).unwrap().len(), 3);

    // Crash A: rotation finished creating the next segment (header only),
    // crash before its first append — an *empty tail segment*.
    fivm_cdc::ChangelogWriter::create_at(dir.join(segment_file_name(4)), 4).unwrap();
    let (mut durable, report) = DurableEngine::recover(count_engine(&tree), &db, &dir).unwrap();
    assert_eq!(report.last_seq, 3);
    assert_eq!(report.replayed_batches, 3);
    assert!(report.log_end.is_clean());
    // Ingestion continues into the empty segment at its named sequence.
    durable.apply_update(&updates[3]).unwrap();
    assert_eq!(durable.applied_seq(), 4);
    drop(durable);

    // Crash B: rotation crashed mid-header — a tail segment too short to
    // be a log at all.  Treated as torn at offset 0, then recreated.
    std::fs::write(dir.join(segment_file_name(5)), [0x46, 0x56]).unwrap();
    let (mut durable, report) = DurableEngine::recover(count_engine(&tree), &db, &dir).unwrap();
    assert_eq!(report.last_seq, 4);
    assert_eq!(report.log_end, LogEnd::TornTail { valid_len: 0 });
    durable.apply_update(&updates[4]).unwrap();
    assert_eq!(durable.applied_seq(), 5);
    let mut recovered = durable.into_engine();
    assert_engines_agree(
        &mut count_reference(&tree, &db, &updates[..5]),
        &mut recovered,
        None,
        "rotation-crash/continued",
    );

    // The repaired chain reads clean end to end.
    let (_, report) = DurableEngine::recover(count_engine(&tree), &db, &dir).unwrap();
    assert!(report.log_end.is_clean());
    assert_eq!(report.last_seq, 5);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stray_snapshot_tmp_is_cleaned_on_recovery_and_next_save() {
    let (tree, db, updates) = retailer_workload();
    let dir = tempdir("tmp_cleanup");
    let snap_path = dir.join(SNAPSHOT_FILE);
    let tmp_path = snap_path.with_extension("tmp");

    let mut durable = DurableEngine::create(count_engine(&tree), &dir).unwrap();
    durable.load_database(&db).unwrap();
    for u in &updates[..2] {
        durable.apply_update(u).unwrap();
    }
    durable.snapshot().unwrap();
    drop(durable);

    // Crash mid-save: a half-written temp file next to the good snapshot.
    std::fs::write(&tmp_path, b"half-written snapshot bytes").unwrap();
    let (mut durable, report) = DurableEngine::recover(count_engine(&tree), &db, &dir).unwrap();
    assert_eq!(report.snapshot_seq, Some(2));
    assert!(!tmp_path.exists(), "recovery startup removes the stray tmp");

    // The next save works and leaves no orphan either.
    durable.apply_update(&updates[2]).unwrap();
    assert_eq!(durable.snapshot().unwrap(), 3);
    assert!(snap_path.exists());
    assert!(!tmp_path.exists(), "a successful save leaves no orphan");
    let _ = std::fs::remove_dir_all(&dir);
}
